"""JSON (de)serialization of histories.

A history serializes to a plain dict — events, version order, per-predicate
matching sets, and transaction levels — suitable for ``json.dumps``, log
shipping, or interop with other checkers.  ``history_from_dict`` restores a
validated, semantically equivalent :class:`~repro.core.history.History`.

Predicates are serialized *extensionally*: whatever predicate family a
history uses (field comparisons, arbitrary functions), the serializer
records the set of history versions that satisfy it, and deserialization
restores a :class:`~repro.core.predicates.MembershipPredicate` with that
set.  Within the history the two are observationally identical — matching
is the only thing the formalism ever asks a predicate (Section 4.3) — so
every checker verdict survives the round trip (property-tested).

Values must be JSON-representable; the engine's row dicts and scalars are.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from ..exceptions import HistoryError
from .events import Abort, Begin, Commit, Event, PredicateRead, Read, Write
from .history import History
from .levels import IsolationLevel
from .objects import Version
from .predicates import MembershipPredicate, VersionSet

__all__ = [
    "history_to_dict",
    "history_from_dict",
    "dumps",
    "loads",
]

FORMAT_VERSION = 1


def _version_to_list(v: Version) -> List:
    return [v.obj, v.tid, v.seq]


def _version_from_list(data: List) -> Version:
    obj, tid, seq = data
    if tid == Version.unborn(obj).tid:
        return Version.unborn(obj)
    return Version(obj, tid, seq)


def _event_to_dict(history: History, ev: Event) -> Dict[str, Any]:
    if isinstance(ev, Begin):
        return {
            "type": "begin",
            "tid": ev.tid,
            "level": str(ev.level) if ev.level is not None else None,
        }
    if isinstance(ev, Commit):
        return {"type": "commit", "tid": ev.tid}
    if isinstance(ev, Abort):
        return {"type": "abort", "tid": ev.tid}
    if isinstance(ev, Write):
        return {
            "type": "write",
            "tid": ev.tid,
            "version": _version_to_list(ev.version),
            "value": ev.value,
            "dead": ev.dead,
        }
    if isinstance(ev, Read):
        return {
            "type": "read",
            "tid": ev.tid,
            "version": _version_to_list(ev.version),
            "value": ev.value,
            "cursor": ev.cursor,
        }
    if isinstance(ev, PredicateRead):
        return {
            "type": "predicate_read",
            "tid": ev.tid,
            "predicate": ev.predicate.name,
            "vset": [_version_to_list(v) for v in ev.vset.versions()],
        }
    raise HistoryError(f"cannot serialize event type {type(ev).__name__}")


def _collect_predicates(history: History) -> Dict[str, Dict[str, Any]]:
    """Extensional snapshot of each predicate: its relations and the set of
    history versions satisfying it."""
    out: Dict[str, Dict[str, Any]] = {}
    all_versions = set(history.writes) | set(history.setup_versions)
    for _i, pread in history.predicate_reads:
        pred = pread.predicate
        if pred.name in out:
            continue
        matching = [
            _version_to_list(v)
            for v in sorted(all_versions)
            if history.version_matches(pred, v)
        ]
        out[pred.name] = {
            "relations": sorted(pred.relations),
            "matching": matching,
        }
    return out


def history_to_dict(history: History) -> Dict[str, Any]:
    """The history as a JSON-representable dict."""
    return {
        "format": FORMAT_VERSION,
        "default_level": (
            str(history.default_level) if history.default_level is not None else None
        ),
        "events": [_event_to_dict(history, ev) for ev in history.events],
        "version_order": {
            obj: [_version_to_list(v) for v in chain if not v.is_unborn]
            for obj, chain in history.version_order.items()
        },
        "predicates": _collect_predicates(history),
    }


def history_from_dict(data: Dict[str, Any], *, validate: bool = True) -> History:
    """Restore a history serialized by :func:`history_to_dict`."""
    if data.get("format") != FORMAT_VERSION:
        raise HistoryError(
            f"unsupported history format {data.get('format')!r} "
            f"(expected {FORMAT_VERSION})"
        )
    predicates = {
        name: MembershipPredicate(
            name,
            frozenset(_version_from_list(v) for v in spec["matching"]),
            frozenset(spec["relations"]),
        )
        for name, spec in data.get("predicates", {}).items()
    }
    events: List[Event] = []
    for raw in data["events"]:
        kind = raw["type"]
        tid = raw["tid"]
        if kind == "begin":
            level = (
                IsolationLevel.from_string(raw["level"])
                if raw.get("level")
                else None
            )
            events.append(Begin(tid, level))
        elif kind == "commit":
            events.append(Commit(tid))
        elif kind == "abort":
            events.append(Abort(tid))
        elif kind == "write":
            events.append(
                Write(
                    tid,
                    _version_from_list(raw["version"]),
                    value=raw.get("value"),
                    dead=raw.get("dead", False),
                )
            )
        elif kind == "read":
            events.append(
                Read(
                    tid,
                    _version_from_list(raw["version"]),
                    value=raw.get("value"),
                    cursor=raw.get("cursor", False),
                )
            )
        elif kind == "predicate_read":
            try:
                predicate = predicates[raw["predicate"]]
            except KeyError:
                raise HistoryError(
                    f"predicate {raw['predicate']!r} has no extensional entry"
                ) from None
            vset = VersionSet.of(
                *(_version_from_list(v) for v in raw["vset"])
            )
            events.append(PredicateRead(tid, predicate, vset))
        else:
            raise HistoryError(f"unknown event type {kind!r}")
    order = {
        obj: [_version_from_list(v) for v in chain]
        for obj, chain in data.get("version_order", {}).items()
    }
    default_level = (
        IsolationLevel.from_string(data["default_level"])
        if data.get("default_level")
        else None
    )
    return History(events, order, default_level=default_level, validate=validate)


def dumps(history: History, **json_kwargs: Any) -> str:
    """Serialize to a JSON string."""
    return json.dumps(history_to_dict(history), **json_kwargs)


def loads(text: str, *, validate: bool = True) -> History:
    """Deserialize from a JSON string."""
    return history_from_dict(json.loads(text), validate=validate)
