"""The cluster's two-phase-commit coordinator.

Cross-shard transactions commit through a dedicated network endpoint (by
default ``"coord"``): clients route ``commit``/``abort`` requests for
multi-shard transactions here instead of to a shard.  The coordinator then
runs classic presumed-nothing 2PC over the same unreliable simulated
network the clients use:

* **phase 1** — a ``prepare`` to every participant shard; each shard
  snapshots the transaction's final writes into its durable prepared state
  (the WAL-backed redo record) and answers ``prepared``;
* **decision** — all prepared: the transaction gets the next *global
  commit stamp* from the cluster sequencer and the decision is ``commit``;
  any refusal (the transaction already died at a shard — deadlock victim,
  crash undo): the decision is ``abort``;
* **phase 2** — a ``decide`` to every participant; shards apply (or undo)
  idempotently, surviving a crash between prepare and decide by redoing
  from the prepared record after restart;
* the client's reply is sent only after every participant acknowledged the
  decision, carrying the global certification verdict.

The coordinator is event-driven (network handlers cannot block), keeps a
per-transaction state machine, and retransmits unacknowledged
prepare/decide messages on a fault-free self-timer
(:meth:`~repro.service.network.SimulatedNetwork.timer`), so a partitioned
or crashed participant is simply retried until it answers — blocking 2PC,
the textbook trade.  All messaging uses the same ``(session, rid)``
idempotency tokens as clients (the coordinator is session ``"coord"`` to
the shards), so retransmissions are absorbed by the shards' at-most-once
caches and replies lost to the network are simply re-fetched.

Determinism: rids, participant order, stamps and timers are all derived
from the seeded message schedule — a seeded run replays the same 2PC
message flow byte for byte, which is what lets the fault matrix (shard
crash between prepare and commit, coordinator partitioned mid-prepare) be
pinned in tests.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

__all__ = ["Coordinator"]


class _TwoPC:
    """State machine for one cross-shard commit/abort."""

    __slots__ = (
        "gid", "verb", "client_src", "client_rid", "trace", "participants",
        "phase", "prepared", "refused", "reason", "decision", "stamp",
        "decide_acks", "rids", "prepare_span", "decide_span", "offsets",
        "opened_at",
    )

    def __init__(
        self,
        gid: int,
        verb: str,
        client_src: str,
        client_rid: int,
        trace: Optional[Dict[str, Any]],
        participants: Tuple[int, ...],
    ) -> None:
        self.gid = gid
        self.verb = verb
        self.client_src = client_src
        self.client_rid = client_rid
        self.trace = trace
        self.participants = participants
        self.phase = "prepare"
        self.prepared: set[int] = set()
        self.refused = False
        self.reason: Optional[str] = None
        self.decision: Optional[str] = None
        self.stamp: Optional[int] = None
        self.decide_acks: set[int] = set()
        #: Post-commit replication-log offsets per participant (replicated
        #: clusters: the client folds these into its session write vector).
        self.offsets: Dict[int, int] = {}
        #: Idempotency token per (phase, participant) — retransmits reuse it.
        self.rids: Dict[Tuple[str, int], int] = {}
        self.prepare_span: Optional[object] = None
        self.decide_span: Optional[object] = None
        #: Network tick the coordinator first saw the transaction — the
        #: in-doubt window for observability is ``finish_tick - opened_at``.
        self.opened_at: int = 0


class Coordinator:
    """2PC coordinator endpoint for one cluster."""

    def __init__(self, cluster, *, name: str = "coord") -> None:
        self.cluster = cluster
        self.name = name
        self.network = cluster.network
        self.tracer = cluster.tracer
        self.metrics = cluster.metrics
        #: Total prepare messages sent (retransmits included) — the hook the
        #: deterministic fault schedule triggers on.
        self.prepares_sent = 0
        self.retransmits = 0
        self.decisions = {"commit": 0, "abort": 0}
        self._rid = 0
        #: Conservative acked watermark: every rid at or below it settled.
        self._acked = -1
        self._settled_rids: set[int] = set()
        self._pending: Dict[int, _TwoPC] = {}
        #: rid -> (gid, shard index, phase) for reply matching.
        self._inflight: Dict[int, Tuple[int, int, str]] = {}
        #: Final client replies per gid (client commit retries re-fetch).
        self._completed: Dict[int, Dict[str, Any]] = {}
        self.network.register_handler(name, self.handle)

    # ------------------------------------------------------------------
    # network entry point
    # ------------------------------------------------------------------

    def handle(
        self, payload: Dict[str, Any], src: str
    ) -> Optional[Dict[str, Any]]:
        kind = payload.get("kind")
        if kind == "timer":
            self._on_timer(payload)
            return None
        if kind in ("commit", "abort"):
            return self._on_client(payload, src, kind)
        # Anything else is a shard's reply to one of our prepare/decide
        # requests (replies carry no "kind").
        self._on_shard_reply(payload)
        return None

    # ------------------------------------------------------------------
    # client requests
    # ------------------------------------------------------------------

    def _on_client(
        self, payload: Dict[str, Any], src: str, verb: str
    ) -> Optional[Dict[str, Any]]:
        gid = payload.get("tid")
        rid = payload["rid"]
        if gid is None:
            return {"error": "bad-request",
                    "reason": f"cross-shard {verb} without tid", "rid": rid}
        done = self._completed.get(gid)
        if done is not None:
            # A retry of an already-decided transaction: re-send the final
            # outcome (the durable log's answer, like a shard's recovered
            # commit reply).
            reply = dict(done)
            reply["rid"] = rid
            if payload.get("trace") is not None:
                reply["trace"] = payload["trace"]
            return reply
        st = self._pending.get(gid)
        if st is not None:
            # Duplicate/retry while the protocol is still running: absorb
            # (same idempotency token; the eventual reply settles it).
            st.client_src, st.client_rid = src, rid
            return None
        meta = self.cluster.state.meta.get(gid)
        if meta is None:
            return {"error": "aborted",
                    "reason": "unknown transaction", "rid": rid}
        st = _TwoPC(
            gid, verb, src, rid, payload.get("trace"),
            tuple(sorted(meta.participants)),
        )
        st.opened_at = self.network.now
        self._pending[gid] = st
        self._note_in_doubt()
        if self.tracer is not None and st.trace is not None:
            st.prepare_span = self.tracer.span(
                "2pc.prepare",
                stack=False,
                parent=st.trace.get("span"),
                trace_id=st.trace.get("id"),
                tid=gid,
                verb=verb,
                participants=[self.cluster.endpoint(i) for i in st.participants],
            )
        if verb == "commit":
            self._send_prepares(st)
        else:
            self._decide(st, "abort", "client abort")
        self.network.timer(
            self.name, {"kind": "timer", "gid": gid},
            delay=self.cluster.config.retry_every,
        )
        return None

    # ------------------------------------------------------------------
    # phase 1: prepare
    # ------------------------------------------------------------------

    def _token(self, st: _TwoPC, phase: str, idx: int) -> int:
        key = (phase, idx)
        rid = st.rids.get(key)
        if rid is None:
            self._rid += 1
            rid = st.rids[key] = self._rid
            self._inflight[rid] = (st.gid, idx, phase)
        return rid

    def _trace_ctx(self, st: _TwoPC, span: Optional[object]):
        if st.trace is None or span is None:
            return None
        return {"id": st.trace.get("id"), "span": span.id}

    def _send_prepares(self, st: _TwoPC) -> None:
        for idx in st.participants:
            if idx in st.prepared:
                continue
            payload: Dict[str, Any] = {
                "kind": "prepare",
                "session": self.name,
                "rid": self._token(st, "prepare", idx),
                "acked": self._acked,
                "tid": st.gid,
            }
            ctx = self._trace_ctx(st, st.prepare_span)
            if ctx is not None:
                payload["trace"] = ctx
            self.prepares_sent += 1
            self.network.send(self.name, self.cluster.endpoint(idx), payload)

    # ------------------------------------------------------------------
    # phase 2: decide
    # ------------------------------------------------------------------

    def _decide(self, st: _TwoPC, outcome: str, reason: Optional[str]) -> None:
        st.phase = "decide"
        st.decision = outcome
        st.reason = reason
        self.decisions[outcome] += 1
        if self.metrics is not None:
            self.metrics.counter(
                "service_2pc_decisions_total", "2PC decisions by outcome"
            ).inc(outcome=outcome)
        if outcome == "commit":
            st.stamp = self.cluster.state.stamp(st.gid)
        if st.prepare_span is not None and st.verb == "commit":
            st.prepare_span.end(
                outcome=outcome,
                prepared=sorted(st.prepared),
            )
            st.prepare_span = None
        if self.tracer is not None and st.trace is not None:
            st.decide_span = self.tracer.span(
                "2pc.decide",
                stack=False,
                parent=st.trace.get("span"),
                trace_id=st.trace.get("id"),
                tid=st.gid,
                outcome=outcome,
                stamp=st.stamp,
            )
        self._send_decides(st)

    def _send_decides(self, st: _TwoPC) -> None:
        for idx in st.participants:
            if idx in st.decide_acks:
                continue
            payload: Dict[str, Any] = {
                "kind": "decide",
                "session": self.name,
                "rid": self._token(st, "decide", idx),
                "acked": self._acked,
                "tid": st.gid,
                "outcome": st.decision,
            }
            if st.stamp is not None:
                payload["stamp"] = st.stamp
            ctx = self._trace_ctx(st, st.decide_span or st.prepare_span)
            if ctx is not None:
                payload["trace"] = ctx
            self.network.send(self.name, self.cluster.endpoint(idx), payload)

    # ------------------------------------------------------------------
    # shard replies
    # ------------------------------------------------------------------

    def _on_shard_reply(self, reply: Dict[str, Any]) -> None:
        entry = self._inflight.get(reply.get("rid"))
        if entry is None:
            return  # stale/duplicate for an already-finalised transaction
        gid, idx, phase = entry
        st = self._pending.get(gid)
        if st is None:
            return
        if phase == "prepare" and st.phase == "prepare":
            if reply.get("ok") and reply.get("prepared"):
                st.prepared.add(idx)
                if len(st.prepared) == len(st.participants):
                    self._decide(st, "commit", None)
            else:
                # The transaction already died at this shard (deadlock
                # victim, crash undo): global abort.
                self._decide(
                    st, "abort",
                    reply.get("reason", "participant refused to prepare"),
                )
        elif phase == "decide" and st.phase == "decide":
            if reply.get("ok"):
                st.decide_acks.add(idx)
                if reply.get("offset") is not None:
                    st.offsets[idx] = reply["offset"]
                if len(st.decide_acks) == len(st.participants):
                    self._finish(st)

    def _finish(self, st: _TwoPC) -> None:
        if st.decision == "commit":
            reply: Dict[str, Any] = {"ok": True}
            certified = self.cluster.certify(st.gid)
            if certified is not None:
                reply["certified"] = certified
            if st.offsets:
                reply["offsets"] = dict(st.offsets)
        else:
            self.cluster.state.aborted.add(st.gid)
            if st.verb == "abort":
                reply = {"ok": True}
            else:
                reply = {
                    "error": "aborted",
                    "reason": st.reason or "aborted",
                }
        self._completed[st.gid] = dict(reply)
        reply["rid"] = st.client_rid
        if st.trace is not None:
            reply["trace"] = st.trace
        if st.decide_span is not None:
            st.decide_span.end(acks=len(st.decide_acks))
        if st.prepare_span is not None:  # client abort without decide span
            st.prepare_span.end(outcome=st.decision)
        del self._pending[st.gid]
        self._note_in_doubt()
        if self.metrics is not None:
            self.metrics.histogram(
                "service_2pc_in_doubt_ticks",
                "ticks from first client request to final 2PC settlement",
            ).observe(
                self.network.now - st.opened_at, outcome=st.decision or "?"
            )
        for rid in st.rids.values():
            self._inflight.pop(rid, None)
            self._settled_rids.add(rid)
        # Advance the acked watermark only over a contiguous settled prefix:
        # pruning a still-inflight rid's cached reply at a shard would turn
        # its retransmit into a stale/no-op answer.
        while (self._acked + 1) in self._settled_rids:
            self._acked += 1
            self._settled_rids.discard(self._acked)
        self.network.send(self.name, st.client_src, reply)

    # ------------------------------------------------------------------
    # retransmission
    # ------------------------------------------------------------------

    def _on_timer(self, payload: Dict[str, Any]) -> None:
        st = self._pending.get(payload.get("gid"))
        if st is None:
            return  # resolved; let the timer chain die
        self.retransmits += 1
        if self.metrics is not None:
            self.metrics.counter(
                "service_2pc_retransmits_total",
                "2PC prepare/decide retransmission rounds",
            ).inc(phase=st.phase)
        if st.phase == "prepare":
            self._send_prepares(st)
        else:
            self._send_decides(st)
        self.network.timer(
            self.name, {"kind": "timer", "gid": st.gid},
            delay=self.cluster.config.retry_every,
        )

    def _note_in_doubt(self) -> None:
        """Keep the in-doubt gauge on the live pending count (observation
        only — never touches protocol state)."""
        if self.metrics is not None:
            self.metrics.gauge(
                "service_2pc_in_doubt",
                "cross-shard transactions with 2PC still in flight",
            ).set(len(self._pending))

    @property
    def pending(self) -> int:
        """Cross-shard transactions whose 2PC is still in flight."""
        return len(self._pending)

    def __repr__(self) -> str:
        return (
            f"<Coordinator {self.name} pending={self.pending} "
            f"decisions={self.decisions}>"
        )
