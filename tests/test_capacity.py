"""Open-loop load, admission control, certification backpressure and the
capacity sweep (repro.service.capacity + the stress-driver extensions)."""

import json

import pytest

from repro.core.incremental import IncrementalAnalysis
from repro.core.levels import IsolationLevel
from repro.observability import (
    SLO,
    Tracer,
    WindowedTelemetry,
    build_run_report,
)
from repro.service import (
    AdmissionConfig,
    Client,
    RetryPolicy,
    Server,
    ServiceUnavailable,
    SimulatedNetwork,
    build_capacity_report,
    find_knee,
    run_capacity,
    run_stress,
)
from repro.service.capacity import KNEE_COMPLETION, CapacityRung
from repro.workloads import BurstyArrivals, PoissonArrivals, ZipfianKeys


def _open_loop(**overrides):
    kwargs = dict(
        scheduler="locking",
        clients=4,
        keys=6,
        ops_per_txn=2,
        seed=5,
        arrivals=PoissonArrivals(rate=0.06),
        horizon=600,
    )
    kwargs.update(overrides)
    return run_stress(**kwargs)


# ---------------------------------------------------------------------------
# open-loop stress driving
# ---------------------------------------------------------------------------


class TestOpenLoopStress:
    def test_offered_equals_schedule_and_commits_bounded(self):
        result = _open_loop()
        schedule = PoissonArrivals(rate=0.06).schedule(
            horizon=600, seed=5 * 8191 + 3
        )
        assert result.offered == len(schedule) > 0
        assert 0 < result.committed <= result.offered
        assert result.committed + result.client_aborts <= result.offered

    def test_arrivals_require_horizon(self):
        with pytest.raises(ValueError):
            run_stress(arrivals=PoissonArrivals(rate=0.1))

    def test_deterministic_per_seed(self):
        a, b = _open_loop(), _open_loop()
        assert a.history_text == b.history_text
        assert a.journals == b.journals
        assert a.commit_latencies == b.commit_latencies

    def test_telemetry_is_purely_observational(self):
        bare = _open_loop()
        watched = _open_loop(
            windows=WindowedTelemetry(
                window=200,
                sample_every=50,
                slos=(SLO(name="p99", kind="latency", threshold=100),),
            )
        )
        assert watched.history_text == bare.history_text
        assert watched.journals == bare.journals
        assert watched.commit_latencies == bare.commit_latencies

    def test_telemetry_sees_the_run(self):
        windows = WindowedTelemetry(window=200, sample_every=50)
        result = _open_loop(windows=windows)
        assert result.windows is windows
        assert windows.arrivals.total == result.offered
        assert windows.commits.total == result.committed
        assert len(windows.timeline) > 2
        assert windows.latencies["txn"].total_count == result.committed

    def test_bursty_arrivals_and_hot_keys_run(self):
        result = _open_loop(
            arrivals=BurstyArrivals(rate=0.04, burst_factor=4.0),
            hot_keys=ZipfianKeys(6, theta=0.99),
        )
        assert result.committed > 0

    def test_config_summary_records_open_loop_shape(self):
        result = _open_loop(
            hot_keys=ZipfianKeys(6, theta=0.9),
            admission=AdmissionConfig(max_active=3),
        )
        cfg = result.config
        assert cfg["arrivals"]["kind"] == "PoissonArrivals"
        assert cfg["arrivals"]["horizon"] == 600
        assert cfg["hot_keys"] == {"keys": 6, "theta": 0.9}
        assert cfg["admission"]["max_active"] == 3

    def test_closed_loop_unchanged_fields(self):
        result = run_stress(clients=2, txns_per_client=5, seed=3)
        assert result.offered == 10
        assert result.windows is None
        assert "arrivals" not in result.config

    def test_summary_lines(self):
        result = _open_loop()
        summary = result.summary()
        assert "certified/aborted/shed" in summary
        assert "commit latency p50/p95/p99" in summary

    def test_latency_percentile(self):
        result = _open_loop()
        p50 = result.latency_percentile(50)
        p99 = result.latency_percentile(99)
        assert p50 is not None and p99 is not None and p50 <= p99
        assert run_stress(
            clients=1, txns_per_client=0
        ).latency_percentile(50) is None


# ---------------------------------------------------------------------------
# admission control / load shedding
# ---------------------------------------------------------------------------


class TestAdmission:
    def _stack(self, **admission_kw):
        net = SimulatedNetwork()
        tracer = Tracer()
        server = Server(
            net,
            "locking",
            initial={"x": 0},
            tracer=tracer,
            admission=AdmissionConfig(**admission_kw),
        )
        return net, server, tracer

    def test_hard_bound_sheds_and_recovers(self):
        net, server, tracer = self._stack(max_active=1, retry_after=5)
        holder = Client(net, name="holder")
        holder.begin()
        blocked = Client(
            net, name="blocked", policy=RetryPolicy(max_attempts=2)
        )
        with pytest.raises(ServiceUnavailable, match="shed"):
            blocked.begin()
        # Every attempt was shed individually: shed replies bypass the
        # dedup cache, so the retry hit admission again.
        assert server.counters["shed"] == 2
        assert blocked.stats["shed"] == 2
        assert any(r.get("name") == "admission.shed" for r in tracer.records)
        holder.commit()
        fresh = Client(net, name="fresh")
        fresh.begin()  # slot freed: admitted without shedding
        assert server.counters["shed"] == 2

    def test_shed_reply_carries_retry_after(self):
        net, server, _ = self._stack(max_active=1, retry_after=7)
        Client(net, name="holder").begin()
        blocked = Client(
            net, name="blocked", policy=RetryPolicy(max_attempts=2)
        )
        before = net.now
        with pytest.raises(ServiceUnavailable):
            blocked.begin()
        # The second attempt waited out the server-directed interval.
        assert net.now >= before + 7

    def test_soft_bound_probability_zero_never_sheds(self):
        net, server, _ = self._stack(
            max_active=1, shed_probability=0.0
        )
        Client(net, name="a").begin()
        Client(net, name="b").begin()
        assert server.counters["shed"] == 0

    def test_open_session_is_not_shed(self):
        net, server, _ = self._stack(max_active=1)
        a = Client(net, name="a")
        a.begin()
        # A re-begin on the session holding the slot is admitted (the old
        # transaction is aborted, freeing the slot it occupied).
        a.begin()
        assert server.counters["shed"] == 0

    def test_stress_run_sheds_under_admission(self):
        result = _open_loop(
            arrivals=PoissonArrivals(rate=0.2),
            admission=AdmissionConfig(max_active=2, retry_after=6),
        )
        assert result.server_counters["shed"] > 0
        assert result.client_stats["shed"] > 0

    def test_admission_validation(self):
        with pytest.raises(ValueError):
            AdmissionConfig(max_active=-1)
        with pytest.raises(ValueError):
            AdmissionConfig(shed_probability=1.5)
        with pytest.raises(ValueError):
            AdmissionConfig(on_uncertified="panic")
        with pytest.raises(ValueError):
            AdmissionConfig(certify_every=0)


# ---------------------------------------------------------------------------
# batched certification (certification lag)
# ---------------------------------------------------------------------------


class TestCertificationBatching:
    def _stack(self, certify_every):
        net = SimulatedNetwork()
        server = Server(
            net,
            "locking",
            initial={"x": 0},
            monitor=IncrementalAnalysis(order_mode="commit"),
            admission=AdmissionConfig(certify_every=certify_every),
        )
        return net, server

    def _commit_one(self, client):
        client.begin()
        client.write("x", client.read("x", for_update=True) + 1)
        return client.commit()

    def test_batch_defers_verdicts_until_full(self):
        net, server = self._stack(certify_every=3)
        client = Client(net)
        first = self._commit_one(client)
        second = self._commit_one(client)
        # Verdicts are pending: replies carry no certification yet.
        assert "certified" not in first and "certified" not in second
        assert server.certification_lag == 2
        assert server.certified == {}
        third = self._commit_one(client)
        # The batch flushed: lag drops to zero, all three certified, and
        # the flushing commit's own verdict rides its reply.
        assert third["certified"] is True
        assert server.certification_lag == 0
        assert set(server.certified.values()) == {True}
        assert len(server.certified) == 3

    def test_flush_certification_drains_partial_batch(self):
        net, server = self._stack(certify_every=10)
        client = Client(net)
        self._commit_one(client)
        self._commit_one(client)
        assert server.certification_lag == 2
        verdicts = server.flush_certification()
        assert list(verdicts.values()) == [True, True]
        assert server.certification_lag == 0
        assert server.flush_certification() == {}

    def test_certify_every_one_is_inline(self):
        net, server = self._stack(certify_every=1)
        reply = self._commit_one(Client(net))
        assert reply["certified"] is True
        assert server.certification_lag == 0

    def test_stress_drains_pending_batch_at_end(self):
        result = _open_loop(
            admission=AdmissionConfig(certify_every=4),
            windows=WindowedTelemetry(window=200, sample_every=50),
        )
        # Every commit got a verdict despite batching (final flush).
        assert len(result.certification) == result.committed
        assert result.all_certified
        assert result.windows.max_certification_lag > 0


# ---------------------------------------------------------------------------
# uncertified reactions: downgrade-the-session / abort-to-restore
# ---------------------------------------------------------------------------


def _write_skew(on_uncertified):
    """Drive a classic SI write skew through the service, declared PL-3,
    so the second commit fails live certification."""
    net = SimulatedNetwork()
    tracer = Tracer()
    server = Server(
        net,
        "si",
        initial={"x": 1, "y": 1},
        monitor=IncrementalAnalysis(order_mode="commit"),
        tracer=tracer,
        admission=AdmissionConfig(on_uncertified=on_uncertified),
    )
    a = Client(net, name="a")
    b = Client(net, name="b")
    a.begin("PL-3")
    b.begin("PL-3")
    a.write("x", a.read("x") + a.read("y"))
    b.write("y", b.read("x") + b.read("y"))
    first = a.commit()
    second = b.commit()
    assert first["certified"] is True
    assert second["certified"] is False
    return net, server, tracer, b


class TestOnUncertified:
    def test_ignore_records_verdict_only(self):
        _net, server, _tracer, _b = _write_skew("ignore")
        assert server.downgrades == []
        assert server.repair_suggestions == []

    def test_downgrade_overrides_the_session(self):
        net, server, tracer, b = _write_skew("downgrade")
        assert len(server.downgrades) == 1
        record = server.downgrades[0]
        assert record["declared"] == "PL-3"
        assert record["session"] == "b"
        downgraded_to = record["downgraded_to"]
        assert downgraded_to is not None and downgraded_to != "PL-3"
        assert any(r.get("name") == "admission.downgrade" for r in tracer.records)
        # The violating session's next begin is declared at the override,
        # whatever level it asks for.
        reply = b.call("begin", level="PL-3")
        declared = server.declared[reply["tid"]]
        assert declared == IsolationLevel.from_string(downgraded_to)

    def test_repair_emits_abort_to_restore_suggestion(self):
        _net, server, tracer, _b = _write_skew("repair")
        assert len(server.repair_suggestions) == 1
        suggestion = server.repair_suggestions[0]
        assert suggestion["level"] == "PL-3"
        assert suggestion["abort"]  # at least one committed txn must go
        assert suggestion["rounds"] >= 1
        assert any(r.get("name") == "admission.repair" for r in tracer.records)


# ---------------------------------------------------------------------------
# the capacity sweep
# ---------------------------------------------------------------------------


def _small_sweep(**overrides):
    kwargs = dict(
        rates=[0.03, 0.08, 0.16],
        horizon=500,
        seed=11,
        clients=4,
        keys=6,
        admission=AdmissionConfig(max_active=3, retry_after=8),
        zipf_theta=0.9,
        slos=(SLO(name="p99", kind="latency", threshold=400, verb="txn"),),
        window=200,
        sample_every=50,
    )
    kwargs.update(overrides)
    return run_capacity(**kwargs)


class TestRunCapacity:
    def test_ladder_shape(self):
        sweep = _small_sweep()
        assert [r.rate for r in sweep.rungs] == [0.03, 0.08, 0.16]
        for rung in sweep.rungs:
            assert rung.offered >= rung.committed >= 0
            assert 0.0 <= rung.completion_ratio <= 1.0
            assert rung.stress is not None
            assert rung.slos and rung.slos[0]["name"] == "p99"
        assert sum(r.committed for r in sweep.rungs) > 0

    def test_empty_rates_rejected(self):
        with pytest.raises(ValueError):
            run_capacity(rates=[])

    def test_deterministic_report(self):
        a = build_capacity_report(_small_sweep())
        b = build_capacity_report(_small_sweep())
        assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)

    def test_knee_and_heatmap(self):
        sweep = _small_sweep()
        report = build_capacity_report(sweep)
        if sweep.knee is not None:
            assert report["knee"]["rate"] == sweep.knee.rate
        assert report["heatmap"]["rates"] == [0.03, 0.08, 0.16]
        # Traced rungs record per-object wait ticks; the matrix is
        # objects x rates.
        assert len(report["heatmap"]["wait_ticks"]) == len(
            report["heatmap"]["objects"]
        )
        for row in report["heatmap"]["wait_ticks"]:
            assert len(row) == 3

    def test_trace_off_skips_heatmap(self):
        report = build_capacity_report(_small_sweep(trace=False))
        assert report["heatmap"]["objects"] == []

    def test_result_to_dict_roundtrips_json(self):
        sweep = _small_sweep(trace=False)
        assert json.loads(json.dumps(sweep.to_dict()))["seed"] == 11


class TestFindKnee:
    def _rung(self, rate, offered, committed):
        return CapacityRung(
            rate=rate, offered=offered, committed=committed, aborted=0,
            shed=0, ticks=100, p50=None, p95=None, p99=None,
            max_queue_depth=0, max_certification_lag=0,
        )

    def test_last_keeping_up_rung_wins(self):
        rungs = [
            self._rung(0.1, 100, 100),
            self._rung(0.2, 200, 190),
            self._rung(0.4, 400, 120),
        ]
        assert find_knee(rungs) == 1
        assert rungs[1].completion_ratio >= KNEE_COMPLETION

    def test_all_overloaded_is_none(self):
        assert find_knee([self._rung(0.5, 100, 10)]) is None

    def test_zero_offered_counts_as_keeping_up(self):
        assert find_knee([self._rung(0.001, 0, 0)]) == 0

    def test_custom_completion_threshold(self):
        rungs = [self._rung(0.1, 100, 80)]
        assert find_knee(rungs) is None
        assert find_knee(rungs, completion=0.5) == 0


# ---------------------------------------------------------------------------
# the RunReport capacity section
# ---------------------------------------------------------------------------


class TestCapacityReport:
    def test_markdown_sections(self):
        sweep = _small_sweep()
        rung = sweep.knee or sweep.rungs[-1]
        report = build_run_report(
            result=rung.stress,
            config=sweep.config,
            title="capacity sweep",
            capacity=build_capacity_report(sweep),
        )
        text = report.to_markdown()
        assert "## Capacity" in text
        assert "### SLO verdicts" in text
        assert "### Contention heatmap" in text
        assert "commits/ktick" in text
        data = report.to_dict()
        assert data["capacity"]["ladder"]
        json.dumps(data)  # JSON-ready throughout

    def test_reports_without_capacity_are_unchanged(self):
        result = run_stress(clients=2, txns_per_client=3, seed=1)
        report = build_run_report(result=result, config={}, title="t")
        assert report.capacity is None
        assert "## Capacity" not in report.to_markdown()
