"""Tests for the engine's history recorder (repro.engine.recorder)."""

import pytest

from repro.core.objects import Version
from repro.engine.recorder import HistoryRecorder


def v(obj, tid, seq=1):
    return Version(obj, tid, seq)


class TestEventEmission:
    def test_sequence(self):
        rec = HistoryRecorder()
        rec.begin(1)
        rec.write(1, v("x", 1), 10)
        rec.read(1, v("x", 1), 10)
        rec.commit(1, {"x": v("x", 1)})
        history = rec.history()
        assert [type(e).__name__ for e in history.events] == [
            "Begin",
            "Write",
            "Read",
            "Commit",
        ]

    def test_len_counts_events(self):
        rec = HistoryRecorder()
        rec.write(1, v("x", 1))
        assert len(rec) == 1


class TestInstallOrder:
    def test_commit_order_default(self):
        rec = HistoryRecorder()
        rec.write(2, v("x", 2))
        rec.write(1, v("x", 1))
        rec.commit(1, {"x": v("x", 1)})
        rec.commit(2, {"x": v("x", 2)})
        # Installed in commit order even though T2 wrote first.
        assert rec.install_order["x"] == [v("x", 1), v("x", 2)]

    def test_position_hints_override(self):
        rec = HistoryRecorder()
        rec.write(2, v("x", 2))  # event 0
        rec.write(1, v("x", 1))  # event 1
        rec.commit(1, {"x": v("x", 1)}, positions={"x": 1})
        rec.commit(2, {"x": v("x", 2)}, positions={"x": 0})
        # Write-event positions: T2's write was first.
        assert rec.install_order["x"] == [v("x", 2), v("x", 1)]

    def test_multi_object_commit_installs_all(self):
        rec = HistoryRecorder()
        rec.write(1, v("x", 1))
        rec.write(1, v("y", 1))
        rec.commit(1, {"x": v("x", 1), "y": v("y", 1)})
        assert set(rec.install_order) == {"x", "y"}


class TestHistoryMaterialisation:
    def test_unfinished_transactions_auto_aborted(self):
        rec = HistoryRecorder()
        rec.write(1, v("x", 1))
        rec.write(2, v("y", 2))
        rec.commit(2, {"y": v("y", 2)})
        history = rec.history()
        assert 1 in history.aborted
        assert 2 in history.committed

    def test_history_is_validated(self):
        from repro.exceptions import MalformedHistoryError

        rec = HistoryRecorder()
        # Read of a version never written: invalid history.
        rec.read(2, v("x", 1))
        rec.write(1, v("x", 1))
        rec.commit(1, {"x": v("x", 1)})
        rec.commit(2, {})
        with pytest.raises(MalformedHistoryError):
            rec.history()

    def test_validate_false_skips(self):
        rec = HistoryRecorder()
        rec.read(2, v("x", 1))
        rec.write(1, v("x", 1))
        rec.commit(1, {"x": v("x", 1)})
        rec.commit(2, {})
        rec.history(validate=False)  # no raise
