"""Tests for the spectrum/ablation analyses (repro.analysis.spectrum)."""


from repro.analysis import (
    contention_spectrum,
    predicate_mode_ablation,
)
from repro.core.parser import parse_history
from repro.core.phenomena import Phenomenon as G
from repro.engine import LockingScheduler, ReadCommittedMVScheduler
from repro.workloads.anomalies import ALL_ANOMALIES
from repro.core.canonical import ALL_CANONICAL


class TestContentionSpectrum:
    def test_serializable_locking_flat_at_zero(self):
        points = contention_spectrum(
            lambda: LockingScheduler("serializable"),
            hot_fractions=(0.0, 0.9),
            n_seeds=5,
        )
        for point in points:
            assert point.rates[G.G1] == 0
            assert point.rates[G.G2] == 0

    def test_mvrc_proscribed_stay_zero_others_appear(self):
        points = contention_spectrum(
            ReadCommittedMVScheduler,
            hot_fractions=(0.0, 0.9),
            n_seeds=8,
        )
        for point in points:
            assert point.rates[G.G0] == 0  # commit-order installs: no G0
            assert point.rates[G.G1] == 0  # committed reads: no G1
        # contention should surface anomalies beyond PL-2 somewhere
        assert any(p.rates[G.G2] > 0 for p in points)

    def test_describe(self):
        points = contention_spectrum(
            ReadCommittedMVScheduler, hot_fractions=(0.5,), n_seeds=2
        )
        assert "hot=0.5" in points[0].describe()


class TestPredicateModeAblation:
    def corpus(self):
        return [entry.history for entry in ALL_CANONICAL + ALL_ANOMALIES]

    def test_edge_containment_and_acceptance(self):
        result = predicate_mode_ablation(self.corpus())
        assert result.edges_all >= result.edges_latest
        for level in result.accepted_latest:
            assert result.accepted_latest[level] >= result.accepted_all[level]

    def test_latest_strictly_fewer_edges_on_pred_read(self):
        # H_pred-read is the paper's example of the difference.
        h = parse_history(
            "w0(x0) c0 w1(x1) c1 w2(x2) r3(Dept=Sales: x2, y0) w2(y2) c2 c3 "
            "[x0 << x1 << x2, y0 << y2] [Dept=Sales matches: x0]"
        )
        result = predicate_mode_ablation([h])
        assert result.edges_all == result.edges_latest + 1  # the T0->T3 edge

    def test_describe(self):
        result = predicate_mode_ablation(self.corpus()[:3])
        assert "ablation" in result.describe()
