"""SEC55 — Section 5.5: mixing of isolation levels.

Two claims, both asserted:

* a locking system with the standard combination of short/long locks is
  mixing-correct for *any* per-transaction level assignment (the paper: "A
  mixed system can be implemented using locking");
* the Mixing Theorem's contrapositive is observable: hand-built histories
  in which a weak transaction interferes with a strong one's obligatory
  edges are flagged as not mixing-correct.

The timing measures MSG construction + Definition 9 over the mixed runs.
"""

from __future__ import annotations

import itertools

import pytest

import repro
from repro.core.levels import IsolationLevel as L
from repro.core.msg import MSG, mixing_correct
from repro.engine import Database, LockingScheduler, Simulator
from repro.workloads import WorkloadConfig, random_programs

N_SEEDS = 10

ASSIGNMENTS = [
    ("all-PL-1", [L.PL_1]),
    ("PL-1+PL-3", [L.PL_1, L.PL_3]),
    ("PL-2+PL-2.99", [L.PL_2, L.PL_2_99]),
    ("full-mix", [L.PL_1, L.PL_2, L.PL_2_99, L.PL_3]),
]


def run_assignment(levels):
    correct = 0
    edge_counts = []
    for seed in range(N_SEEDS):
        cfg = WorkloadConfig(
            n_programs=6, steps_per_program=3, n_keys=4,
            write_fraction=0.6, hot_fraction=0.6,
        )
        programs = random_programs(cfg, seed=seed)
        for program, level in zip(programs, itertools.cycle(levels)):
            program.level = level
        db = Database(LockingScheduler("serializable"))
        db.load(cfg.initial_state())
        Simulator(db, programs, seed=seed).run()
        history = db.history()
        report = mixing_correct(history)
        correct += report.ok
        edge_counts.append(len(MSG(history).edges))
    return correct, edge_counts


@pytest.mark.parametrize("name,levels", ASSIGNMENTS)
def test_mixed_locking_is_mixing_correct(benchmark, record_table, name, levels):
    correct, edge_counts = benchmark.pedantic(
        run_assignment, args=(levels,), iterations=1, rounds=1
    )
    assert correct == N_SEEDS, f"{name}: some run was not mixing-correct"
    record_table(
        f"section55_{name}",
        f"SEC55 — mixed locking, levels {[str(l) for l in levels]}: "
        f"{correct}/{N_SEEDS} runs mixing-correct "
        f"(MSG edges per run: {edge_counts})",
    )


def test_mixing_violation_detected(benchmark, record_table):
    """The obligatory-edge example: a PL-3 reader cycled through a PL-1
    writer is caught; the same events with both at PL-1 are fine."""
    strong = (
        "b1@PL-3 b2@PL-1 r1(x0, 1) w2(x2, 2) w2(y2, 2) c2 r1(y2, 2) c1 "
        "[x0 << x2]"
    )
    weak = (
        "b1@PL-1 b2@PL-1 r1(x0, 1) w2(x2, 2) w2(y2, 2) c2 r1(y2, 2) c1 "
        "[x0 << x2]"
    )

    def run():
        return (
            mixing_correct(repro.parse_history(strong)),
            mixing_correct(repro.parse_history(weak)),
        )

    strong_report, weak_report = benchmark(run)
    assert not strong_report.ok and strong_report.cycle is not None
    assert weak_report.ok
    record_table(
        "section55_violation",
        "SEC55 — obligatory edges:\n"
        f"  PL-3 reader:  {strong_report.describe()}\n"
        f"  PL-1 reader:  {weak_report.describe()}",
    )
