"""The classical anomaly corpus, expressed as Adya histories.

Each entry is a minimal history exhibiting exactly one textbook anomaly,
with the full matrix of level verdicts (ANSI chain plus the extension
levels).  The corpus drives the FIG6 benchmark's admission matrix and a
large slice of the test suite: every verdict here is a consequence the
formalism must reproduce —

* lost update fails PL-2+ (G-single) and PL-SI but *passes* PL-CS unless the
  read went through a cursor;
* read skew fails PL-SI through G-SIa while write skew passes PL-SI (the
  canonical SI ≠ serializability separation);
* the phantom fails only levels that look at predicate anti-dependencies.
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..core.canonical import CanonicalHistory
from ..core.levels import IsolationLevel as L

__all__ = [
    "DIRTY_WRITE",
    "DIRTY_READ",
    "ABORTED_READ_PREDICATE",
    "INTERMEDIATE_READ",
    "CIRCULAR_FLOW",
    "LOST_UPDATE",
    "LOST_CURSOR_UPDATE",
    "FUZZY_READ",
    "READ_SKEW",
    "WRITE_SKEW",
    "PHANTOM_INSERT",
    "THREE_WAY_FLOW",
    "SPECULATIVE_READ",
    "NON_SNAPSHOT_READ",
    "CLEAN_SERIAL",
    "ALL_ANOMALIES",
]


def _levels(**kw: bool) -> Dict[L, bool]:
    mapping = {
        "pl1": L.PL_1,
        "pl2": L.PL_2,
        "plcs": L.PL_CS,
        "pl2plus": L.PL_2PLUS,
        "pl299": L.PL_2_99,
        "plsi": L.PL_SI,
        "pl3": L.PL_3,
    }
    return {mapping[k]: v for k, v in kw.items()}


DIRTY_WRITE = CanonicalHistory(
    name="dirty-write",
    section="anomaly",
    description="interleaved writes leave x and y ordered oppositely (G0)",
    text="w1(x1, 1) w2(x2, 2) w2(y2, 2) c2 w1(y1, 1) c1  [x1 << x2, y2 << y1]",
    provides=_levels(
        pl1=False, pl2=False, plcs=False, pl2plus=False, pl299=False,
        plsi=False, pl3=False,
    ),
)

DIRTY_READ = CanonicalHistory(
    name="dirty-read",
    section="anomaly",
    description="T2 commits having read a version of an aborted T1 (G1a)",
    text="w1(x1, 10) r2(x1, 10) w2(y2, 10) c2 a1",
    provides=_levels(
        pl1=True, pl2=False, plcs=False, pl2plus=False, pl299=False,
        plsi=False, pl3=False,
    ),
)

ABORTED_READ_PREDICATE = CanonicalHistory(
    name="aborted-read-predicate",
    section="anomaly",
    description=(
        "T2's predicate read selected a version of the aborted T1 "
        "(G1a via a version set)"
    ),
    text="w1(x1) r2(Dept=Sales: x1*) c2 a1",
    provides=_levels(
        pl1=True, pl2=False, plcs=False, pl2plus=False, pl299=False,
        plsi=False, pl3=False,
    ),
)

INTERMEDIATE_READ = CanonicalHistory(
    name="intermediate-read",
    section="anomaly",
    description="T2 commits having read a non-final version of x (G1b)",
    text="w1(x1.1, 1) r2(x1.1, 1) c2 w1(x1.2, 2) c1",
    provides=_levels(
        pl1=True, pl2=False, plcs=False, pl2plus=False, pl299=False,
        plsi=False, pl3=False,
    ),
)

CIRCULAR_FLOW = CanonicalHistory(
    name="circular-information-flow",
    section="anomaly",
    description="T1 and T2 each read the other's write (G1c)",
    text="w1(x1, 1) w2(y2, 2) r1(y2, 2) r2(x1, 1) c1 c2",
    provides=_levels(
        pl1=True, pl2=False, plcs=False, pl2plus=False, pl299=False,
        plsi=False, pl3=False,
    ),
)

LOST_UPDATE = CanonicalHistory(
    name="lost-update",
    section="anomaly",
    description=(
        "both transactions read x0 and write x; T1's increment silently "
        "overwrites T2's (one anti-dependency closed by a write-dependency)"
    ),
    text="r1(x0, 10) r2(x0, 10) w2(x2, 15) c2 w1(x1, 11) c1  [x0 << x2 << x1]",
    provides=_levels(
        pl1=True, pl2=True, plcs=True, pl2plus=False, pl299=False,
        plsi=False, pl3=False,
    ),
)

LOST_CURSOR_UPDATE = CanonicalHistory(
    name="lost-cursor-update",
    section="anomaly",
    description="the same lost update, but T1 read x through a cursor, so PL-CS catches it (G-cursor)",
    text="rc1(x0, 10) r2(x0, 10) w2(x2, 15) c2 w1(x1, 11) c1  [x0 << x2 << x1]",
    provides=_levels(
        pl1=True, pl2=True, plcs=False, pl2plus=False, pl299=False,
        plsi=False, pl3=False,
    ),
)

FUZZY_READ = CanonicalHistory(
    name="fuzzy-read",
    section="anomaly",
    description="T1 reads x twice and sees two different committed values",
    text="r1(x0, 10) w2(x2, 15) c2 r1(x2, 15) c1  [x0 << x2]",
    provides=_levels(
        pl1=True, pl2=True, plcs=True, pl2plus=False, pl299=False,
        plsi=False, pl3=False,
    ),
)

READ_SKEW = CanonicalHistory(
    name="read-skew",
    section="anomaly",
    description=(
        "T1 reads old x and new y — an inconsistent (non-snapshot) view; "
        "fails PL-2+ (G-single) and PL-SI (G-SIa)"
    ),
    text="r1(x0, 5) w2(x2, 4) w2(y2, 6) c2 r1(y2, 6) c1  [x0 << x2]",
    provides=_levels(
        pl1=True, pl2=True, plcs=True, pl2plus=False, pl299=False,
        plsi=False, pl3=False,
    ),
)

WRITE_SKEW = CanonicalHistory(
    name="write-skew",
    section="anomaly",
    description=(
        "T1 and T2 each read both x and y from a consistent snapshot and "
        "write disjoint objects; the cycle has two anti-dependency edges, "
        "so Snapshot Isolation and PL-2+ admit it while PL-2.99/PL-3 do not"
    ),
    text=(
        "r1(x0, 1) r1(y0, 1) r2(x0, 1) r2(y0, 1) w1(x1, -1) w2(y2, -1) "
        "c1 c2  [x0 << x1, y0 << y2]"
    ),
    provides=_levels(
        pl1=True, pl2=True, plcs=True, pl2plus=True, pl299=False,
        plsi=True, pl3=False,
    ),
)

PHANTOM_INSERT = CanonicalHistory(
    name="phantom-insert",
    section="anomaly",
    description=(
        "T2 inserts a row matching T1's earlier predicate read and T1 then "
        "reads T2's row: the anti-dependency cycle exists only through the "
        "predicate edge, so PL-2.99 admits it and PL-3 rejects it"
    ),
    text=(
        "r1(Dept=Sales: x0*) w2(y2) c2 r1(y2) c1 "
        "[Dept=Sales matches: y2]"
    ),
    provides=_levels(
        pl1=True, pl2=True, plcs=True, pl2plus=False, pl299=True,
        plsi=False, pl3=False,
    ),
)

THREE_WAY_FLOW = CanonicalHistory(
    name="three-way-information-ring",
    section="anomaly",
    description=(
        "three transactions each read the next one's write — circular "
        "information flow needs no pair to be mutual (G1c at ring size 3)"
    ),
    text=(
        "w1(x1, 1) w2(y2, 2) w3(z3, 3) r1(y2, 2) r2(z3, 3) r3(x1, 1) "
        "c1 c2 c3"
    ),
    provides=_levels(
        pl1=True, pl2=False, plcs=False, pl2plus=False, pl299=False,
        plsi=False, pl3=False,
    ),
)

SPECULATIVE_READ = CanonicalHistory(
    name="speculative-read",
    section="anomaly",
    description=(
        "T2 reads T1's *uncommitted* final write and serializes after it — "
        "the read the preventative P1 bans outright; legal at every level "
        "except PL-SI (no start ordering) and caught by nothing else"
    ),
    text="w1(x1, 1) r2(x1, 1) w2(y2, 2) c1 c2",
    provides=_levels(
        pl1=True, pl2=True, plcs=True, pl2plus=True, pl299=True,
        plsi=False, pl3=True,
    ),
)

NON_SNAPSHOT_READ = CanonicalHistory(
    name="non-snapshot-read",
    section="anomaly",
    description=(
        "T2 began before T1 committed yet reads T1's write — perfectly "
        "serializable, but not something a begin-time snapshot could "
        "produce: G-SIa (interference) without any cycle.  Separates PL-SI "
        "from PL-3 in the other direction from write skew"
    ),
    text="b2 w1(x1, 1) c1 r2(x1, 1) c2",
    provides=_levels(
        pl1=True, pl2=True, plcs=True, pl2plus=True, pl299=True,
        plsi=False, pl3=True,
    ),
)

CLEAN_SERIAL = CanonicalHistory(
    name="clean-serial",
    section="anomaly",
    description="a serial two-transaction history providing every level",
    text="w1(x1, 1) r1(x1, 1) c1 r2(x1, 1) w2(x2, 2) c2  [x1 << x2]",
    provides=_levels(
        pl1=True, pl2=True, plcs=True, pl2plus=True, pl299=True,
        plsi=True, pl3=True,
    ),
)

ALL_ANOMALIES: Tuple[CanonicalHistory, ...] = (
    DIRTY_WRITE,
    DIRTY_READ,
    ABORTED_READ_PREDICATE,
    INTERMEDIATE_READ,
    CIRCULAR_FLOW,
    LOST_UPDATE,
    LOST_CURSOR_UPDATE,
    FUZZY_READ,
    READ_SKEW,
    WRITE_SKEW,
    PHANTOM_INSERT,
    THREE_WAY_FLOW,
    SPECULATIVE_READ,
    NON_SNAPSHOT_READ,
    CLEAN_SERIAL,
)
