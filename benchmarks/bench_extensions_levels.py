"""EXT — Sections 1/6: the extension levels (PL-2+, PL-SI, PL-CS).

The paper points to Adya's thesis for Cursor Stability, Snapshot Isolation
and PL-2+.  This bench asserts the separating corpus — each pair of
distinct levels is separated by some anomaly — and drives the SI engine to
show its emitted histories land exactly at PL-SI: every run provides PL-SI,
and adversarial (write-skew-shaped) workloads produce runs that are PL-SI
but not PL-3.
"""

from __future__ import annotations


import repro
from repro.core.levels import IsolationLevel as L
from repro.engine import Database, Program, Read, Simulator, SnapshotIsolationScheduler, Write
from repro.workloads.anomalies import ALL_ANOMALIES

N_SEEDS = 12
EXT_LEVELS = (L.PL_CS, L.PL_2PLUS, L.PL_SI)


def test_extension_admission_matrix(benchmark, record_table):
    def classify():
        return [
            (entry, repro.check(entry.history, extensions=True))
            for entry in ALL_ANOMALIES
        ]

    rows = benchmark(classify)
    lines = [
        "EXT — extension-level admission matrix",
        "",
        f"{'anomaly':28}" + "".join(f"{str(c):>8}" for c in EXT_LEVELS),
    ]
    for entry, report in rows:
        cells = []
        for level in EXT_LEVELS:
            got = report.ok(level)
            assert got == entry.provides[level], f"{entry.name} at {level}"
            cells.append(f"{'Y' if got else '-':>8}")
        lines.append(f"{entry.name:28}" + "".join(cells))
    record_table("extensions_matrix", "\n".join(lines))


def _skew_programs():
    return [
        Program("a", [Read("x", into="x"), Read("y", into="y"),
                      Write("x", lambda r: r["x"] + r["y"])]),
        Program("b", [Read("x", into="x"), Read("y", into="y"),
                      Write("y", lambda r: r["x"] + r["y"])]),
        Program("c", [Read("x", into="x"), Read("y", into="y"),
                      Write("z", lambda r: r["x"] - r["y"])]),
    ]


def test_si_engine_lands_exactly_at_pl_si(benchmark, record_table):
    def run_all():
        pl_si, skew = 0, 0
        for seed in range(N_SEEDS):
            db = Database(SnapshotIsolationScheduler())
            db.load({"x": 1, "y": 1, "z": 0})
            Simulator(db, _skew_programs(), seed=seed).run()
            report = repro.check(db.history(), extensions=True)
            pl_si += report.ok(L.PL_SI)
            skew += report.ok(L.PL_SI) and not report.ok(L.PL_3)
        return pl_si, skew

    pl_si, skew = benchmark.pedantic(run_all, iterations=1, rounds=1)
    assert pl_si == N_SEEDS  # SI never violates its own level
    assert skew > 0  # and really exhibits write skew on some seeds
    record_table(
        "extensions_si_engine",
        f"EXT — SI engine over write-skew workload: {pl_si}/{N_SEEDS} runs "
        f"provide PL-SI; {skew}/{N_SEEDS} are PL-SI but NOT PL-3 "
        "(write skew realized, the canonical SI/serializability gap)",
    )


def test_cursor_stability_separation(benchmark, record_table):
    """PL-CS catches the cursor-read lost update and nothing weaker."""
    from repro.workloads.anomalies import LOST_CURSOR_UPDATE, LOST_UPDATE

    def run():
        return (
            repro.check(LOST_UPDATE.history, extensions=True),
            repro.check(LOST_CURSOR_UPDATE.history, extensions=True),
        )

    plain, cursor = benchmark(run)
    assert plain.ok(L.PL_CS) and not cursor.ok(L.PL_CS)
    assert not plain.ok(L.PL_2PLUS)  # PL-2+ catches both
    record_table(
        "extensions_cursor",
        "EXT — cursor stability: plain lost update passes PL-CS, the "
        "cursor-read variant fails it (G-cursor); PL-2+ rejects both",
    )


def test_si_referential_integrity_skew(benchmark, record_table):
    """The orders workload: SI's write skew as a real integrity bug.  An
    order placement and an item discontinuation race; under SI some seeds
    leave an orphan order (history PL-SI but not PL-3), while serializable
    locking never does."""
    from repro.engine import Database, LockingScheduler, Simulator
    from repro.workloads.orders import (
        discontinue,
        initial_shop,
        orphan_orders,
        place_order,
    )

    def run():
        si_orphans = ser_orphans = 0
        for seed in range(N_SEEDS):
            for factory, counter in (
                (SnapshotIsolationScheduler, "si"),
                (lambda: LockingScheduler("serializable"), "ser"),
            ):
                db = Database(factory())
                db.load(initial_shop(2))
                Simulator(
                    db,
                    [place_order("o", "item:1"), discontinue("d", "item:1")],
                    seed=seed,
                ).run()
                history = db.history()
                orphans = bool(orphan_orders(history))
                if counter == "si":
                    si_orphans += orphans
                    if orphans:
                        rep = repro.check(history, extensions=True)
                        assert rep.ok(L.PL_SI) and not rep.ok(L.PL_3)
                else:
                    ser_orphans += orphans
        return si_orphans, ser_orphans

    si_orphans, ser_orphans = benchmark.pedantic(run, iterations=1, rounds=1)
    assert si_orphans > 0
    assert ser_orphans == 0
    record_table(
        "extensions_si_integrity",
        f"EXT — orders workload: SI produced orphan orders on "
        f"{si_orphans}/{N_SEEDS} seeds (each such history PL-SI but not "
        f"PL-3); serializable locking on 0/{N_SEEDS}",
    )
