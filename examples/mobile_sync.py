#!/usr/bin/env python3
"""Mobile disconnected operation: the paper's H1' argument, live.

Two field devices and a laptop share an inventory database.  While
disconnected, each runs transactions against its local view, tentatively
committing; later local transactions freely read those tentative writes —
exactly the dirty reads the preventative P1 phenomenon outlaws.  On
reconnect, the server certifies each device's log, aborting transactions
whose reads went stale (and cascading to their dependents).

The payoff, printed at the end: the committed history violates P1 on every
run, yet the checker certifies it serializable — "the preventative approach
... rules out histories that really occur in practical implementations"
(Section 3).

Run:  python examples/mobile_sync.py
"""

import random

import repro
from repro.baseline import PreventativeAnalysis, PreventativePhenomenon
from repro.engine.mobile import MobileCluster


def field_day(seed: int) -> MobileCluster:
    """One simulated day: devices work offline, sync occasionally."""
    rng = random.Random(seed)
    cluster = MobileCluster()
    cluster.load({f"item{i}": 20 for i in range(5)})
    devices = [cluster.client(i) for i in range(3)]

    for hour in range(8):
        device = rng.choice(devices)
        txn = device.begin()
        # pick, restock, or stocktake
        action = rng.random()
        if action < 0.4:
            item = f"item{rng.randrange(5)}"
            stock = txn.read(item) or 0
            txn.write(item, max(0, stock - rng.randrange(1, 4)))
        elif action < 0.8:
            item = f"item{rng.randrange(5)}"
            txn.write(item, (txn.read(item) or 0) + 5)
        else:
            total = sum(txn.read(f"item{i}") or 0 for i in range(5))
            txn.write("stocktake", total)
        txn.tentative_commit()
        if rng.random() < 0.35:
            outcome = device.sync()
            if outcome.aborted:
                print(
                    f"  device {device.client_id} sync: "
                    f"{len(outcome.committed)} certified, "
                    f"{len(outcome.aborted)} aborted "
                    f"({len(outcome.cascaded)} cascaded)"
                )
    for device in devices:
        device.sync()
    return cluster


def main() -> None:
    print("simulating disconnected field work...\n")
    p1_runs = 0
    serializable_runs = 0
    runs = 10
    for seed in range(runs):
        cluster = field_day(seed)
        history = cluster.history()
        report = repro.check(history)
        serializable_runs += report.serializable
        p1_runs += PreventativeAnalysis(history).exhibits(
            PreventativePhenomenon.P1
        )
    print(f"\nruns: {runs}")
    print(f"serializable (PL-3) committed histories: {serializable_runs}/{runs}")
    print(f"runs the preventative P1 would reject:    {p1_runs}/{runs}")
    print(
        "\nEvery committed history is serializable; the locking-shaped "
        "definitions would have outlawed the system outright."
    )


if __name__ == "__main__":
    main()
