#!/usr/bin/env python3
"""Phantom hunt: reproduce Figure 5's anomaly with a live engine.

An auditor sums the Sales department's salaries by predicate and compares
the total against a maintained Sum row, while hiring transactions insert
matching employees.  Under REPEATABLE READ locking (long item locks, *short*
predicate locks — Figure 1's Degree 2.99 row) the phantom slips in; under
SERIALIZABLE locking (long predicate locks) it cannot.

When a phantom is caught, the script prints the offending history, its DSG
(note the predicate-anti-dependency edge closing the cycle, as in Figure 5),
and the per-level verdicts.

Run:  python examples/phantom_hunt.py
"""

import repro
from repro.core import DSG
from repro.engine import Database, LockingScheduler, Simulator
from repro.workloads import employee_programs, initial_employees

N_SEEDS = 40


def hunt(profile: str):
    """Run seeds until an audit observes an inconsistency; return stats."""
    caught = []
    for seed in range(N_SEEDS):
        db = Database(LockingScheduler(profile))
        db.load(initial_employees(3))
        result = Simulator(
            db,
            employee_programs(n_hires=1, n_raises=1, n_audits=1, seed=seed),
            seed=seed,
        ).run()
        for outcome in result.outcomes:
            if (
                outcome.committed
                and outcome.program.startswith("audit")
                and outcome.regs.get("consistent") is False
            ):
                caught.append((seed, result, outcome))
    return caught


def main() -> None:
    for profile in ("serializable", "repeatable-read"):
        caught = hunt(profile)
        print(f"locking/{profile}: {len(caught)} phantom(s) in {N_SEEDS} runs")

    caught = hunt("repeatable-read")
    if not caught:
        print("no phantom found — try more seeds")
        return

    seed, result, outcome = caught[0]
    print(f"\n--- first phantom (seed {seed}) ---")
    print(
        f"audit read salaries totalling {outcome.regs['observed']}, "
        f"but the stored Sum said {outcome.regs['stored']}"
    )
    print("\nhistory:")
    print(f"  {result.history}")

    report = repro.check(result.history)
    print("\nverdicts:")
    for level in report.levels:
        print(f"  {level}: {'PROVIDED' if report.ok(level) else 'violated'}")

    print("\nDSG (dot):")
    print(DSG(result.history).to_dot())
    print(
        "\nAs in Figure 5: the only cycle needs the predicate "
        "anti-dependency edge, so PL-2.99 admits the history and PL-3 "
        "rejects it."
    )


if __name__ == "__main__":
    main()
