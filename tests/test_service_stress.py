"""Acceptance tests for the fault-injected service layer: seeded stress
runs must commit through drops/duplicates/crashes with every commit
live-certified, and must replay byte-for-byte under equal seeds."""

import pytest

from repro.checker import check
from repro.core.levels import IsolationLevel
from repro.core.parser import parse_history
from repro.service import (
    Client,
    NetworkConfig,
    RetryPolicy,
    Server,
    SimulatedNetwork,
    run_stress,
)

FAULTY = NetworkConfig(drop=0.05, duplicate=0.05, min_delay=1, max_delay=4)


class TestAcceptance:
    """The ISSUE's acceptance run: >= 100 transactions under drops +
    duplicates + one crash/restart, all certified, reproducible."""

    @pytest.fixture(scope="class")
    def runs(self):
        kwargs = dict(
            clients=4,
            txns_per_client=25,
            seed=7,
            network=FAULTY,
            crash_after_commits=30,
        )
        return run_stress(**kwargs), run_stress(**kwargs)

    def test_completes_with_faults_and_crash(self, runs):
        result, _ = runs
        assert result.committed >= 100
        assert result.crashes == 1 and result.restarts == 1
        assert result.network_counters["dropped"] > 0
        assert result.network_counters["duplicated"] > 0

    def test_every_commit_certified_at_declared_level(self, runs):
        result, _ = runs
        assert result.certification  # non-empty
        assert result.all_certified
        for tid, (level, ok) in result.certification.items():
            if tid == 0:
                continue
            assert level is IsolationLevel.PL_3
            assert ok, f"tid {tid} violated its declared level"

    def test_same_seed_identical_history_bytes(self, runs):
        first, second = runs
        assert first.history_text == second.history_text
        assert first.journals == second.journals
        assert first.network_counters == second.network_counters
        assert first.certification == second.certification

    def test_batch_checker_agrees_with_live_monitor(self, runs):
        result, _ = runs
        report = check(parse_history(result.history_text))
        assert report.ok(IsolationLevel.PL_3)
        assert report.strongest_level == result.strongest_level()

    def test_different_seed_differs(self, runs):
        first, _ = runs
        other = run_stress(
            clients=4,
            txns_per_client=25,
            seed=8,
            network=FAULTY,
            crash_after_commits=30,
        )
        assert other.history_text != first.history_text


SCHEDULES = {
    "drop-heavy": NetworkConfig(drop=0.15, min_delay=1, max_delay=3),
    "duplicate-heavy": NetworkConfig(duplicate=0.2, min_delay=1, max_delay=3),
    "reorder-only": NetworkConfig(min_delay=1, max_delay=8),
    "drops+dups": FAULTY,
}


class TestDeterminismAcrossSchedules:
    @pytest.mark.parametrize("name", sorted(SCHEDULES))
    def test_identical_seed_identical_run(self, name):
        kwargs = dict(
            clients=3,
            txns_per_client=6,
            seed=13,
            network=SCHEDULES[name],
            crash_after_commits=8,
        )
        a, b = run_stress(**kwargs), run_stress(**kwargs)
        assert a.history_text == b.history_text
        assert a.journals == b.journals
        # identical CheckReport, not just identical bytes
        ra = check(parse_history(a.history_text))
        rb = check(parse_history(b.history_text))
        assert ra.explain() == rb.explain()
        assert a.all_certified and b.all_certified

    def test_partition_schedule_is_deterministic(self):
        def run():
            net = SimulatedNetwork(NetworkConfig(seed=21, min_delay=1, max_delay=3))
            server = Server(net, "locking", initial={"x": 0})
            client = Client(
                net, policy=RetryPolicy(timeout=6, max_attempts=12)
            )
            outcomes = []
            for i in range(6):
                if i == 2:
                    net.set_partition(("client",), ("server",))
                if i == 4:
                    net.heal()
                try:
                    client.begin()
                    client.write("x", i)
                    client.commit()
                    outcomes.append("ok")
                except Exception as exc:
                    outcomes.append(type(exc).__name__)
                    client.tid = None
            return outcomes, tuple(client.journal), repr(server.history())

        first, second = run(), run()
        assert first == second
        outcomes = first[0]
        assert "ok" in outcomes  # commits before and after the partition
        assert any(o != "ok" for o in outcomes)  # partition really bit


class TestSchedulerFamilies:
    @pytest.mark.parametrize(
        "family,floor",
        [
            ("locking", IsolationLevel.PL_3),
            ("optimistic", IsolationLevel.PL_3),
            ("mixed-optimistic", IsolationLevel.PL_3),
            ("snapshot-isolation", IsolationLevel.PL_2),
            ("mv-read-committed", IsolationLevel.PL_2),
        ],
    )
    def test_stress_certifies_each_family(self, family, floor):
        result = run_stress(
            scheduler=family,
            clients=3,
            txns_per_client=6,
            seed=3,
            network=NetworkConfig(
                drop=0.03, duplicate=0.03, min_delay=1, max_delay=3
            ),
            crash_after_commits=8,
        )
        assert result.committed == 18
        assert result.all_certified
        strongest = result.strongest_level()
        assert strongest is not None and strongest.implies(floor)

    def test_declared_level_override(self):
        result = run_stress(
            scheduler="locking",
            level="PL-1",
            clients=2,
            txns_per_client=4,
            seed=5,
            network=NetworkConfig(min_delay=1, max_delay=2),
        )
        assert result.all_certified
        levels = {lvl for _t, (lvl, _ok) in result.certification.items() if lvl}
        assert levels == {IsolationLevel.PL_1}
