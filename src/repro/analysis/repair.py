"""History repair: which transactions must abort to reach a level?

An optimistic implementation *is* an online version of this question: "to
keep the committed history at level L, which committing transactions must
be refused?" (Section 3: "if necessary, some of them will be forced to
abort so that serializability can be provided").  This module answers it
offline for a recorded history:

* :func:`abort_transactions` — rewrite a history with a set of commits
  turned into aborts, *cascading* to committed readers of the aborted
  transactions' versions (otherwise the rewrite would manufacture G1a) and
  dropping the aborted versions from the version order;
* :func:`repair` — greedily choose transactions to abort until the history
  provides the target level: while a proscribed phenomenon has a witness
  cycle, abort the cycle's most conflict-laden transaction; G1a/G1b
  witnesses abort the offending reader.

Greedy feedback-vertex-set is not guaranteed minimum (the exact problem is
NP-hard), but it is sound — the result always provides the level
(asserted), loader/setup transactions are never chosen, and the tests pin
the classic cases (a lost update repairs by aborting one transaction, write
skew by one, G0 by one).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import FrozenSet, Iterable, List, Optional, Set, Tuple

from ..core.conflicts import PredicateDepMode
from ..core.events import Abort, Commit, Event
from ..core.history import History
from ..core.levels import IsolationLevel, satisfies
from ..core.phenomena import Analysis

__all__ = ["RepairResult", "abort_transactions", "repair"]


def abort_transactions(
    history: History, tids: Iterable[int], *, cascade: bool = True
) -> Tuple[History, FrozenSet[int]]:
    """A copy of the history with the given transactions aborted.

    Their commit events become aborts and their versions leave the version
    order.  With ``cascade`` (default), committed transactions that read a
    now-aborted transaction's version (directly or in a predicate read's
    version set) are aborted too, transitively — the cascading aborts of
    Section 5.2.  Returns the rewritten history and the full set of aborted
    tids (including cascades).
    """
    doomed: Set[int] = set(tids)
    if cascade:
        changed = True
        while changed:
            changed = False
            for _i, read in history.reads:
                if (
                    read.tid in history.committed
                    and read.tid not in doomed
                    and read.version.tid in doomed
                ):
                    doomed.add(read.tid)
                    changed = True
            for _i, pread in history.predicate_reads:
                if pread.tid not in history.committed or pread.tid in doomed:
                    continue
                if any(v.tid in doomed for v in pread.vset.versions()):
                    doomed.add(pread.tid)
                    changed = True
    events: List[Event] = []
    for ev in history.events:
        if isinstance(ev, Commit) and ev.tid in doomed:
            events.append(Abort(ev.tid))
        else:
            events.append(ev)
    order = {
        obj: [v for v in chain if not v.is_unborn and v.tid not in doomed]
        for obj, chain in history.version_order.items()
    }
    return (
        History(events, order, default_level=history.default_level),
        frozenset(doomed),
    )


@dataclass(frozen=True)
class RepairResult:
    """Outcome of :func:`repair`."""

    level: IsolationLevel
    aborted: FrozenSet[int]
    history: History
    rounds: int

    @property
    def clean(self) -> bool:
        return not self.aborted

    def describe(self) -> str:
        if self.clean:
            return f"already provides {self.level}; nothing to abort"
        pretty = ", ".join(f"T{t}" for t in sorted(self.aborted))
        return (
            f"aborting {pretty} ({len(self.aborted)} transaction(s), "
            f"{self.rounds} round(s)) yields {self.level}"
        )


def _pick_victim(analysis: Analysis, history: History) -> Optional[int]:
    """The committed transaction implicated in the most conflict edges
    among the violating witnesses (loader/setup transactions excluded)."""
    votes: Counter = Counter()
    protected = set(history.setup_tids) | {0}
    for report in analysis._cache.values():
        if not report.present:
            continue
        for witness in report.witnesses:
            if witness.cycle is not None:
                for node in witness.cycle.nodes:
                    if node not in protected:
                        votes[node] += 1
            elif witness.tid is not None and witness.tid not in protected:
                votes[witness.tid] += 1
    if not votes:
        return None
    # Prefer the candidate whose abort cascades least (aborting a
    # transaction others read from drags them down too), then the most
    # implicated, then the youngest — the conventional victim choice.
    def cascade_size(tid: int) -> int:
        _rewritten, doomed = abort_transactions(history, {tid})
        return len(doomed)

    best = min(
        votes.items(),
        key=lambda item: (cascade_size(item[0]), -item[1], -item[0]),
    )
    return best[0]


def repair(
    history: History,
    level: IsolationLevel = IsolationLevel.PL_3,
    *,
    mode: PredicateDepMode = PredicateDepMode.LATEST,
    max_rounds: int = 1000,
) -> RepairResult:
    """Greedily abort committed transactions (with cascades) until the
    history provides ``level``.  Always terminates: each round removes at
    least one committed transaction, and the empty committed history
    provides every level."""
    current = history
    doomed: Set[int] = set()
    rounds = 0
    while True:
        analysis = Analysis(current, mode)
        verdict = satisfies(current, level, analysis=analysis)
        if verdict.ok:
            return RepairResult(level, frozenset(doomed), current, rounds)
        if rounds >= max_rounds:
            raise RuntimeError(
                f"repair did not converge after {max_rounds} rounds"
            )
        rounds += 1
        victim = _pick_victim(analysis, current)
        if victim is None:
            # No attributable witness (should not happen: every violation
            # carries one); abort the youngest committed transaction.
            remaining = current.committed - {0}
            if not remaining:
                return RepairResult(level, frozenset(doomed), current, rounds)
            victim = max(remaining)
        current, newly = abort_transactions(current, {victim})
        doomed |= newly
