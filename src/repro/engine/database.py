"""The user-facing database: transactions over a pluggable scheduler.

::

    from repro.engine import Database, SnapshotIsolationScheduler

    db = Database(SnapshotIsolationScheduler())
    db.load({"x": 5, "y": 5})

    t1 = db.begin()
    t1.write("x", t1.read("x") - 1)
    t1.commit()

    history = db.history()          # an Adya history, ready for the checker

Initial data is loaded by a real loader transaction (tid 0) so histories are
self-contained: the loader's writes are ordinary events, exactly like the
paper's ``T_init``-then-load story in Section 4.1.
"""

from __future__ import annotations

import warnings
from typing import Any, Callable, Dict, Mapping, Optional

from ..core.events import Begin, Write
from ..core.history import History
from ..core.levels import IsolationLevel
from ..core.predicates import Predicate
from ..exceptions import InvalidOperation, TransactionAborted
from .scheduler import PredicateResult, Scheduler
from .transaction import Transaction, TxnState

__all__ = ["Database", "TransactionHandle"]

#: The direct-scheduler deprecation notice fires at most once per process
#: (tests reset this to re-arm it).
_DIRECT_SCHEDULER_WARNED = False


class TransactionHandle:
    """One running transaction.  All operations delegate to the database's
    scheduler, which decides blocking/aborting semantics."""

    def __init__(self, db: "Database", txn: Transaction):
        self._db = db
        self._txn = txn

    # -- identity ------------------------------------------------------

    @property
    def tid(self) -> int:
        return self._txn.tid

    @property
    def state(self) -> TxnState:
        return self._txn.state

    @property
    def level(self) -> Optional[IsolationLevel]:
        return self._txn.level

    # -- primitive operations -------------------------------------------

    def read(
        self, obj: str, *, cursor: bool = False, for_update: bool = False
    ) -> Any:
        """The object's value in this transaction's view (``None`` if the
        object does not exist in that view).  ``for_update`` is the SQL
        ``SELECT ... FOR UPDATE`` hint (locking schedulers take the write
        lock immediately; others ignore it)."""
        return self._db.scheduler.read(
            self._txn, obj, cursor=cursor, for_update=for_update
        )

    def write(self, obj: str, value: Any) -> None:
        self._db.scheduler.write(self._txn, obj, value)

    def delete(self, obj: str) -> None:
        """Install a dead version (Section 4.1's model of deletion)."""
        self._db.scheduler.write(self._txn, obj, None, dead=True)

    def insert(self, relation: str, value: Any) -> str:
        """Create a fresh object in ``relation`` and write its first visible
        version; returns the new object id."""
        obj = self._db.new_object(relation)
        self._db.scheduler.write(self._txn, obj, value)
        return obj

    def predicate_read(self, predicate: Predicate) -> PredicateResult:
        """The raw predicate read (no item reads) — what ``SELECT COUNT``
        does."""
        return self._db.scheduler.predicate_read(self._txn, predicate)

    # -- composite SQL-ish operations -------------------------------------

    def select(self, predicate: Predicate) -> Dict[str, Any]:
        """Predicate read followed by item reads of every matched tuple
        (Section 4.3.1): the matched reads appear as separate events."""
        result = self.predicate_read(predicate)
        return {obj: self.read(obj) for obj, _v in result.matched}

    def count(self, predicate: Predicate) -> int:
        """Matched-tuple count; no item read events (the paper's
        SELECT COUNT example)."""
        return len(self.predicate_read(predicate))

    def update_where(
        self, predicate: Predicate, fn: Callable[[Any], Any]
    ) -> int:
        """Predicate-based modification (Section 4.3.2): a predicate read
        followed by writes on the matched tuples.  Returns the number of
        tuples updated."""
        result = self.predicate_read(predicate)
        for obj, value in result.matched:
            self.write(obj, fn(value))
        return len(result)

    def delete_where(self, predicate: Predicate) -> int:
        """Predicate-based deletion: dead versions for every match."""
        result = self.predicate_read(predicate)
        for obj, _value in result.matched:
            self.delete(obj)
        return len(result)

    # -- lifecycle -------------------------------------------------------

    def commit(self) -> None:
        self._db.scheduler.commit(self._txn)

    def abort(self) -> None:
        self._db.scheduler.abort(self._txn)


class Database:
    """A database instance bound to one scheduler.

    The supported way to open one is :func:`repro.connect` (or passing a
    scheduler family name here, which routes through the same factory)::

        db = repro.connect("snapshot-isolation", seed=7)

    Passing a hand-built :class:`Scheduler` instance still works as a thin
    deprecation shim for pre-``connect`` code, but new code should name the
    family and let :class:`~repro.engine.factory.SchedulerConfig` build it.
    """

    def __init__(
        self,
        scheduler: Scheduler | str,
        *,
        tid_allocator: Optional[Callable[[], int]] = None,
    ):
        if isinstance(scheduler, str):
            from .factory import create_scheduler

            scheduler = create_scheduler(scheduler)
        elif getattr(scheduler, "config", None) is None:
            global _DIRECT_SCHEDULER_WARNED
            if not _DIRECT_SCHEDULER_WARNED:
                _DIRECT_SCHEDULER_WARNED = True
                warnings.warn(
                    "constructing Database from a hand-built scheduler is "
                    "deprecated; use repro.connect(...) or "
                    "Database('<scheduler name>')",
                    DeprecationWarning,
                    stacklevel=2,
                )
        self.scheduler = scheduler
        self._next_tid = 1
        #: Optional shared tid source (a sharded cluster hands every member
        #: database the same allocator so tids are globally unique and
        #: globally ordered; ``None`` keeps the private counter).
        self._tid_allocator = tid_allocator
        self._obj_counters: Dict[str, int] = {}
        self._loaded = False

    @property
    def config(self):
        """The :class:`~repro.engine.factory.SchedulerConfig` this database
        was opened with (``None`` for hand-built schedulers)."""
        return self.scheduler.config

    # ------------------------------------------------------------------
    # crash recovery
    # ------------------------------------------------------------------

    @classmethod
    def recover(
        cls,
        scheduler: Scheduler | str,
        recorder,
        *,
        tid_allocator: Optional[Callable[[], int]] = None,
    ) -> "Database":
        """Rebuild a database from a durable :class:`HistoryRecorder` log.

        Models a crash/restart: the store, lock tables and sessions are
        volatile and gone; the recorder log is the WAL.  A fresh scheduler
        is attached to the *same* recorder (the history keeps growing in
        place, so online monitors stay attached across the restart) and its
        store is seeded with the latest committed version of every object
        replayed from the log (:meth:`Scheduler.restore`).  Transactions
        that were active at the crash must already have abort events in the
        log (the service layer records them at crash time — recovery undo).
        """
        if isinstance(scheduler, str):
            from .factory import create_scheduler

            scheduler = create_scheduler(scheduler)
        # Latest committed (version, value, dead) per object, from the log.
        writes: Dict[Any, tuple] = {}
        for ev in recorder.events:
            if isinstance(ev, Write):
                writes[ev.version] = (ev.value, ev.dead)
        state: Dict[str, tuple] = {}
        for obj, chain in recorder.install_order.items():
            version = chain[-1]
            value, dead = writes.get(version, (None, True))
            state[obj] = (version, value, dead)
        scheduler.recorder = recorder
        scheduler.restore(state)
        db = cls(scheduler, tid_allocator=tid_allocator)
        db._loaded = bool(recorder.events)
        for ev in recorder.events:
            if isinstance(ev, Begin):
                db._next_tid = max(db._next_tid, ev.tid + 1)
        for obj in state:
            db._note_existing(obj)
        return db

    # ------------------------------------------------------------------

    def begin(
        self,
        level: Optional[IsolationLevel | str] = None,
        *,
        tid: Optional[int] = None,
    ) -> TransactionHandle:
        """Start a transaction, optionally declaring its isolation level
        (recorded as a ``Begin`` event for mixed-system checking).

        ``tid`` joins an already-allocated global transaction id instead of
        allocating a fresh one — the sharded service layer uses this when a
        cross-shard transaction lazily begins on a secondary shard."""
        if isinstance(level, str):
            level = IsolationLevel.from_string(level)
        if tid is None:
            if self._tid_allocator is not None:
                tid = self._tid_allocator()
            else:
                tid = self._next_tid
                self._next_tid += 1
        txn = Transaction(tid, level=level)
        self.scheduler.recorder.begin(txn.tid, level)
        self.scheduler.on_begin(txn)
        return TransactionHandle(self, txn)

    def load(self, initial: Mapping[str, Any]) -> None:
        """Install the initial database state with loader transaction T0
        ("a transaction that loads the database creates the initial visible
        versions", Section 4.1).  Must run before any application
        transaction."""
        if self._loaded:
            raise InvalidOperation("initial data already loaded")
        if self._next_tid != 1:
            raise InvalidOperation("load() must precede the first begin()")
        self._loaded = True
        loader = Transaction(0)
        self.scheduler.on_begin(loader)
        for obj in initial:
            self._note_existing(obj)
        for obj, value in initial.items():
            self.scheduler.write(loader, obj, value)
        self.scheduler.commit(loader)

    def new_object(self, relation: str) -> str:
        """A fresh, never-used object id in ``relation`` (the system's
        unique-object selection for inserts, Section 4.1)."""
        count = self._obj_counters.get(relation, 0) + 1
        self._obj_counters[relation] = count
        return f"{relation}:{count}"

    def _note_existing(self, obj: str) -> None:
        """Keep the insert counter ahead of preloaded ``rel:n`` names."""
        rel, sep, tail = obj.partition(":")
        if sep and tail.isdigit():
            self._obj_counters[rel] = max(self._obj_counters.get(rel, 0), int(tail))

    # ------------------------------------------------------------------

    def run(
        self,
        fn: Callable[[TransactionHandle], Any],
        *,
        level: Optional[IsolationLevel | str] = None,
        retries: int = 0,
    ) -> Any:
        """Execute ``fn(txn)`` inside a transaction; commits on return,
        aborts on exception.  ``retries`` re-runs the function with a fresh
        transaction when the scheduler aborts it (OCC/SI losers)."""
        attempts = retries + 1
        for attempt in range(attempts):
            txn = self.begin(level)
            try:
                result = fn(txn)
                txn.commit()
                return result
            except TransactionAborted:
                if attempt == attempts - 1:
                    raise
            except BaseException:
                txn.abort()
                raise
        raise AssertionError("unreachable")

    def history(self, *, validate: bool = True) -> History:
        """The execution so far as a validated Adya history."""
        return self.scheduler.recorder.history(validate=validate)

    def could_commit(
        self,
        txn: TransactionHandle,
        level: Optional[IsolationLevel | str] = None,
    ):
        """The Section 5.6 running-transaction test against the live engine:
        could ``txn`` commit *right now* at ``level``?

        With ``level`` given, returns a
        :class:`~repro.core.levels.LevelVerdict`; without, the strongest
        ANSI level at which the commit would be legal (or ``None``).
        The real version order recorded so far is used, so multi-version
        install orders are respected.
        """
        from ..core.runtime import could_commit_at, running_satisfies

        snapshot = self.history(validate=False)
        if level is None:
            return could_commit_at(snapshot, txn.tid)
        if isinstance(level, str):
            level = IsolationLevel.from_string(level)
        return running_satisfies(snapshot, txn.tid, level)
