"""Replication guard: backups must not tax the unreplicated path, and
the replica-lag table must stay honest.

Two pins:

* **replicas=0 overhead** — a cluster configured without backups is
  byte-identical to the pre-replication cluster path (the replication
  test suite pins the bytes); here we pin the *cost*: the replication
  plumbing (the disabled pump, the session-vector bookkeeping, the
  routing checks) must stay within a small multiple of the same seeded
  workload on the unreplicated facade.
* **replica-lag table** — one seeded replicated run per read
  preference / guarantee combination, recording replica serves, lagging
  redirects, session-guarantee violations and the opcheck verdict.
  Enforced sessions must end violation-free; stale-by-choice rows must
  witness what they served.
"""

from __future__ import annotations

import time
from dataclasses import replace

import pytest

from repro.service import (
    ClusterConfig,
    NetworkConfig,
    SessionGuarantees,
    StressConfig,
    run_stress,
)

_BASE = StressConfig(
    scheduler="locking",
    clients=4,
    txns_per_client=15,
    keys=8,
    ops_per_txn=2,
    seed=17,
    network=NetworkConfig(min_delay=1, max_delay=3),
    cluster=ClusterConfig(shards=2),
)


def _best_of(config: StressConfig, rounds: int = 3) -> float:
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        result = run_stress(config)
        best = min(best, time.perf_counter() - start)
        assert result.all_certified
    return best


@pytest.mark.benchguard
def test_zero_replica_overhead_bounded():
    plain = _best_of(_BASE)
    zero = _best_of(
        replace(_BASE, cluster=ClusterConfig(shards=2, replicas=0))
    )
    # replicas=0 arms nothing: no pump timers, no RNG draws, no replica
    # servers — only the (cheap) config checks on the hot paths.  Pin it
    # to a small multiple with an absolute floor against timer noise.
    assert zero < max(plain * 2, plain + 0.05), (
        f"replicas=0 run {zero * 1000:.1f} ms vs unreplicated "
        f"{plain * 1000:.1f} ms"
    )


def test_replica_lag_table(record_table):
    rows = [
        f"{'config':>24} {'commits':>7} {'serves':>6} {'lagging':>7} "
        f"{'violations':>10} {'opcheck':>8}"
    ]
    cases = [
        (
            "primary",
            replace(
                _BASE,
                cluster=ClusterConfig(shards=2, replicas=2),
                read_only_fraction=0.5,
            ),
        ),
        (
            "replica+causal",
            replace(
                _BASE,
                level="PL-2",
                cluster=ClusterConfig(shards=2, replicas=2),
                read_preference="replica",
                session_guarantees=SessionGuarantees(causal=True),
                read_only_fraction=0.5,
            ),
        ),
        (
            "replica+stale",
            replace(
                _BASE,
                level="PL-2",
                keys=4,
                cluster=ClusterConfig(
                    shards=2, replicas=2, replication_every=12,
                    replication_lag=(4, 10),
                ),
                read_preference="replica",
                read_only_fraction=0.5,
            ),
        ),
    ]
    for name, config in cases:
        result = run_stress(config)
        assert result.all_certified, f"{name}: certification failed"
        counters = result.cluster.counters
        verdict = result.opcheck()
        violations = len(result.session_violations)
        if config.session_guarantees is not None:
            assert violations == 0, f"{name}: enforced session violated"
        rows.append(
            f"{name:>24} {result.committed:>7} "
            f"{counters['replica_serves']:>6} "
            f"{counters['replica_lagging']:>7} {violations:>10} "
            f"{'ok' if verdict.ok else 'diverged':>8}"
        )
    record_table("replication_lag", "\n".join(rows))
