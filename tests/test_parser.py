"""Tests for the history notation parser (repro.core.parser)."""

import pytest

from repro.core import parse_history
from repro.core.events import Abort, Begin, PredicateRead
from repro.core.levels import IsolationLevel
from repro.core.objects import Version
from repro.core.parser import parse_version
from repro.exceptions import ParseError


def v(obj, tid, seq=1):
    return Version(obj, tid, seq)


class TestVersionTokens:
    def test_simple(self):
        assert parse_version("x1") == v("x", 1)

    def test_multi_digit_tid(self):
        assert parse_version("x12") == v("x", 12)

    def test_multi_letter_object(self):
        assert parse_version("Sum0") == v("Sum", 0)

    def test_explicit_sequence(self):
        assert parse_version("x1.2") == v("x", 1, 2)

    def test_unborn(self):
        assert parse_version("xinit") == Version.unborn("x")

    def test_unborn_with_seq_rejected(self):
        with pytest.raises(ParseError):
            parse_version("xinit.2")

    def test_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_version("123")


class TestEventParsing:
    def test_write_read_commit(self):
        h = parse_history("w1(x1) r2(x1) c1 c2")
        kinds = [type(e).__name__ for e in h.events]
        assert kinds == ["Write", "Read", "Commit", "Commit"]

    def test_values(self):
        h = parse_history("w1(x1, 5) r2(x1, 5) c1 c2")
        assert h.events[0].value == 5
        assert h.events[1].value == 5

    def test_float_and_string_values(self):
        h = parse_history("w1(x1, 2.5) w1(y1, hello) c1")
        assert h.events[0].value == 2.5
        assert h.events[1].value == "hello"

    def test_dead_write(self):
        h = parse_history("w1(x1, dead) c1")
        assert h.events[0].dead

    def test_abort(self):
        h = parse_history("w1(x1) a1")
        assert isinstance(h.events[-1], Abort)

    def test_begin_with_level(self):
        h = parse_history("b1@PL-2.99 w1(x1) c1")
        assert isinstance(h.events[0], Begin)
        assert h.events[0].level is IsolationLevel.PL_2_99

    def test_cursor_read(self):
        h = parse_history("w1(x1) c1 rc2(x1) c2")
        assert h.events[2].cursor

    def test_unknown_level_rejected(self):
        with pytest.raises(ParseError):
            parse_history("b1@PL-9 c1")

    def test_unrecognised_token_rejected(self):
        with pytest.raises(ParseError):
            parse_history("w1(x1) foo c1")

    def test_write_of_foreign_version_rejected(self):
        with pytest.raises(ParseError):
            parse_history("w1(x2) c1")

    def test_comments_stripped(self):
        h = parse_history("w1(x1) c1  # trailing comment\n# whole line\n")
        assert len(h) == 2


class TestSequenceInference:
    def test_repeated_writes_numbered(self):
        h = parse_history("w1(x1) w1(x1) c1")
        assert h.events[0].version == v("x", 1, 1)
        assert h.events[1].version == v("x", 1, 2)

    def test_read_resolves_to_latest_so_far(self):
        # A read between the two writes is an intermediate read of x1.1.
        h = parse_history("w1(x1) r2(x1) w1(x1) c1 c2")
        assert h.events[1].version == v("x", 1, 1)

    def test_read_after_both_writes_is_final(self):
        h = parse_history("w1(x1) w1(x1) c1 r2(x1) c2")
        assert h.events[3].version == v("x", 1, 2)

    def test_explicit_sequence_respected(self):
        h = parse_history("w1(x1.1) r2(x1.1) w1(x1.2) c1 c2")
        assert h.events[1].version == v("x", 1, 1)


class TestPredicateReads:
    def test_version_set_parsed(self):
        h = parse_history("w1(x1) w2(y2) c1 c2 r3(P: x1, y2) c3")
        pread = h.events[4]
        assert isinstance(pread, PredicateRead)
        assert pread.vset.get("x") == v("x", 1)
        assert pread.vset.get("y") == v("y", 2)

    def test_inline_star_marks_matching(self):
        h = parse_history("w1(x1) w2(y2) c1 c2 r3(P: x1*, y2) c3")
        pread = h.events[4]
        assert h.version_matches(pread.predicate, v("x", 1))
        assert not h.version_matches(pread.predicate, v("y", 2))

    def test_matches_block_merges(self):
        h = parse_history("w1(x1) w2(y2) c1 c2 r3(P: x1) c3 [P matches: y2]")
        pread = h.events[4]
        assert h.version_matches(pread.predicate, v("y", 2))

    def test_same_name_shares_predicate(self):
        h = parse_history("w1(x1) c1 r2(P: x1*) c2 r3(P: x1) c3")
        p1 = h.events[2].predicate
        p2 = h.events[4].predicate
        assert p1 is p2

    def test_unborn_in_vset(self):
        h = parse_history("w1(x1) r2(P: x1, yinit) c1 c2")
        assert h.events[1].vset.get("y") == Version.unborn("y")

    def test_predicate_name_with_equals(self):
        h = parse_history("w1(x1) c1 r2(Dept=Sales: x1*) c2")
        assert h.events[2].predicate.name == "Dept=Sales"


class TestVersionOrderBlocks:
    def test_double_angle(self):
        h = parse_history("w1(x1) w2(x2) c1 c2 [x2 << x1]")
        assert h.order_of("x")[1:] == (v("x", 2), v("x", 1))

    def test_single_angle_and_unicode(self):
        h1 = parse_history("w1(x1) w2(x2) c1 c2 [x2 < x1]")
        h2 = parse_history("w1(x1) w2(x2) c1 c2 [x2 ≺ x1]")
        assert h1.order_of("x") == h2.order_of("x")

    def test_multiple_chains(self):
        h = parse_history("w1(x1) w1(y1) w2(x2) w2(y2) c1 c2 [x2 << x1, y1 << y2]")
        assert h.order_of("x")[1:] == (v("x", 2), v("x", 1))
        assert h.order_of("y")[1:] == (v("y", 1), v("y", 2))

    def test_init_in_chain_ignored(self):
        h = parse_history("w1(x1) c1 [xinit << x1]")
        assert h.order_of("x") == (Version.unborn("x"), v("x", 1))

    def test_mixed_objects_in_chain_rejected(self):
        with pytest.raises(ParseError):
            parse_history("w1(x1) w1(y1) c1 [x1 << y1]")


class TestAutoComplete:
    def test_flag_appends_aborts(self):
        h = parse_history("w1(x1) w2(x2) c2", auto_complete=True)
        assert 1 in h.aborted
        assert 2 in h.committed
