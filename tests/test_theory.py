"""Phenomenon-containment lemmas.

The level lattice (`IsolationLevel.implies`) is justified by containments
between phenomena: proscribing a superset phenomenon proscribes the subset.
These tests assert each lemma over every history we have — the canonical
corpus, the anomaly corpus, and random synthetic histories — so the lattice
can't silently drift from the detectors.

Lemmas (presence of the left implies presence of the right):

* G0 ⟹ G1c (a ww cycle is a dependency cycle);
* G2-item ⟹ G2 (an item-anti cycle is an anti cycle);
* G-single ⟹ G2 (one anti edge is at least one);
* G-cursor ⟹ G2-item (the cursor cycle's anti edge is an item edge);
* G-single ⟹ G-SIb (a DSG cycle is an SSG cycle);
* G2 ⟹ G-SS (an anti cycle lives in the SSG too);
* G1a/G1b/G1c ⟹ G1 (by definition).
"""

from __future__ import annotations

import pytest

from repro.core import Analysis
from repro.core.canonical import ALL_CANONICAL
from repro.core.phenomena import Phenomenon as G
from repro.workloads.anomalies import ALL_ANOMALIES
from repro.workloads.generator import synthetic_history

LEMMAS = [
    (G.G0, G.G1C),
    (G.G2_ITEM, G.G2),
    (G.G_SINGLE, G.G2),
    (G.G_CURSOR, G.G2_ITEM),
    (G.G_SINGLE, G.G_SIB),
    (G.G2, G.G_SS),
    (G.G1A, G.G1),
    (G.G1B, G.G1),
    (G.G1C, G.G1),
]


def corpus_histories():
    for entry in ALL_CANONICAL + ALL_ANOMALIES:
        yield entry.name, entry.history


def random_histories():
    for seed in range(12):
        yield f"synthetic-{seed}", synthetic_history(
            n_txns=15,
            n_objects=4,
            ops_per_txn=4,
            write_fraction=0.6,
            stale_read_fraction=0.5,
            seed=seed,
        )


@pytest.mark.parametrize("left,right", LEMMAS, ids=lambda p: str(p))
def test_lemma_on_corpus(left, right):
    for name, history in corpus_histories():
        analysis = Analysis(history)
        if analysis.exhibits(left):
            assert analysis.exhibits(right), f"{name}: {left} without {right}"


@pytest.mark.parametrize("left,right", LEMMAS, ids=lambda p: str(p))
def test_lemma_on_random_histories(left, right):
    for name, history in random_histories():
        analysis = Analysis(history)
        if analysis.exhibits(left):
            assert analysis.exhibits(right), f"{name}: {left} without {right}"


def test_lattice_matches_lemmas():
    """Every `implies` edge in the level lattice is justified: for all
    histories, providing the stronger level provides the weaker one.  (The
    per-history check also runs elsewhere; here we tie it to the lemma
    set so a new level can't claim an implication no lemma supports.)"""
    from repro.core.levels import IsolationLevel as L, satisfies

    for name, history in list(corpus_histories()) + list(random_histories()):
        analysis = Analysis(history)
        oks = {level: satisfies(history, level, analysis=analysis).ok for level in L}
        for a in L:
            for b in L:
                if a.implies(b) and oks[a]:
                    assert oks[b], f"{name}: {a} ⟹ {b} violated"


def test_g1_is_exactly_its_parts():
    for name, history in corpus_histories():
        analysis = Analysis(history)
        parts = any(
            analysis.exhibits(p) for p in (G.G1A, G.G1B, G.G1C)
        )
        assert analysis.exhibits(G.G1) == parts, name


def test_g_si_is_exactly_its_parts():
    for name, history in corpus_histories():
        analysis = Analysis(history)
        parts = analysis.exhibits(G.G_SIA) or analysis.exhibits(G.G_SIB)
        assert analysis.exhibits(G.G_SI) == parts, name
