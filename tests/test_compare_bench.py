"""The benchmark guard must skip with a message — never KeyError — when
the committed baseline predates a registered workload (or is malformed)."""

import pathlib
import sys

import pytest

sys.path.insert(
    0, str(pathlib.Path(__file__).resolve().parents[1] / "benchmarks")
)

from compare_bench import compare, split_guard_names  # noqa: E402


class TestSplitGuardNames:
    def test_partitions_present_and_missing(self):
        baseline = {"benchmarks": {"old[1000]": 0.1, "old[4000]": 0.4}}
        present, missing = split_guard_names(
            baseline, ["old[1000]", "new[1000]", "old[4000]"]
        )
        assert present == ["old[1000]", "old[4000]"]
        assert missing == ["new[1000]"]

    def test_baseline_without_benchmarks_key(self):
        present, missing = split_guard_names({}, ["a", "b"])
        assert present == []
        assert missing == ["a", "b"]

    def test_empty_wanted(self):
        assert split_guard_names({"benchmarks": {"a": 1}}, []) == ([], [])


class TestCompareHardening:
    def _doc(self, benchmarks, calibration=1.0):
        return {"calibration_s": calibration, "benchmarks": benchmarks}

    def test_missing_calibration_raises_value_error_with_fix(self):
        good = self._doc({"a": 0.1})
        for bad in ({"benchmarks": {"a": 0.1}}, {}):
            with pytest.raises(ValueError, match="re-distill"):
                compare(bad, good)
            with pytest.raises(ValueError, match="re-distill"):
                compare(good, bad)

    def test_one_sided_benchmarks_are_ignored_not_keyerrors(self):
        baseline = self._doc({"shared": 0.1, "retired": 0.2})
        current = self._doc({"shared": 0.1, "brand_new": 9.9})
        assert compare(baseline, current) == []

    def test_missing_benchmarks_key_is_empty_not_keyerror(self):
        assert compare(self._doc({}), {"calibration_s": 1.0}) == []
        assert compare({"calibration_s": 1.0}, self._doc({"a": 1.0})) == []

    def test_regressions_still_detected(self):
        baseline = self._doc({"a": 0.1})
        current = self._doc({"a": 0.2})
        messages = compare(baseline, current)
        assert len(messages) == 1 and messages[0].startswith("a:")

    def test_calibration_scaling_spares_slower_hardware(self):
        # A 2x slower machine (outside the same-host jitter band) gets a
        # 2x allowance: 0.21s against a 0.1s baseline passes.
        baseline = self._doc({"a": 0.1}, calibration=1.0)
        current = self._doc({"a": 0.21}, calibration=2.0)
        assert compare(baseline, current) == []
