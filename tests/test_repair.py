"""Tests for history repair (repro.analysis.repair)."""

import pytest

import repro
from repro.analysis.repair import abort_transactions, repair
from repro.core import parse_history
from repro.core.levels import IsolationLevel as L
from repro.workloads import anomalies as corpus
from repro.workloads.generator import synthetic_history


class TestAbortTransactions:
    def test_commit_becomes_abort(self):
        h = parse_history("w1(x1) c1 w2(y2) c2")
        rewritten, doomed = abort_transactions(h, {2})
        assert doomed == {2}
        assert 2 in rewritten.aborted
        assert 1 in rewritten.committed

    def test_versions_leave_order(self):
        from repro.core.objects import Version

        h = parse_history("w1(x1) c1 w2(x2) c2")
        rewritten, _ = abort_transactions(h, {2})
        assert Version("x", 2) not in rewritten.installed

    def test_cascade_to_readers(self):
        h = parse_history("w1(x1) r2(x1) w2(y2) c1 c2")
        rewritten, doomed = abort_transactions(h, {1})
        assert doomed == {1, 2}  # T2 read T1's write

    def test_cascade_through_predicate_reads(self):
        h = parse_history("w1(x1) r2(P: x1*) w2(y2) c1 c2")
        _rewritten, doomed = abort_transactions(h, {1})
        assert 2 in doomed

    def test_cascade_is_transitive(self):
        h = parse_history("w1(x1) r2(x1) w2(y2) r3(y2) c1 c2 c3")
        _rewritten, doomed = abort_transactions(h, {1})
        assert doomed == {1, 2, 3}

    def test_no_cascade_flag_can_break_history(self):
        # Without cascades the rewrite manufactures G1a — the function
        # still produces a *valid* (but dirty) history.
        h = parse_history("w1(x1) r2(x1) w2(y2) c1 c2")
        rewritten, doomed = abort_transactions(h, {1}, cascade=False)
        assert doomed == {1}
        from repro.core.phenomena import Analysis, Phenomenon

        assert Analysis(rewritten).exhibits(Phenomenon.G1A)

    def test_rewritten_history_validates(self):
        h = parse_history("w1(x1) c1 r2(x1) w2(x2) c2 r3(x2) c3")
        rewritten, _ = abort_transactions(h, {2})
        assert rewritten.committed == {1}


class TestRepair:
    def test_clean_history_untouched(self):
        result = repair(parse_history("w1(x1) c1 r2(x1) c2"))
        assert result.clean
        assert result.rounds == 0

    def test_lost_update_needs_one_abort(self):
        result = repair(corpus.LOST_UPDATE.history)
        assert len(result.aborted) == 1
        assert repro.satisfies(result.history, L.PL_3).ok

    def test_write_skew_needs_one_abort(self):
        result = repair(corpus.WRITE_SKEW.history)
        assert len(result.aborted) == 1

    def test_dirty_write_needs_one_abort(self):
        result = repair(corpus.DIRTY_WRITE.history, L.PL_1)
        assert len(result.aborted) == 1
        assert repro.satisfies(result.history, L.PL_1).ok

    def test_dirty_read_aborts_the_reader(self):
        result = repair(corpus.DIRTY_READ.history, L.PL_2)
        assert result.aborted == {2}

    def test_phantom_repair(self):
        result = repair(corpus.PHANTOM_INSERT.history, L.PL_3)
        assert repro.satisfies(result.history, L.PL_3).ok
        assert len(result.aborted) == 1

    def test_loader_never_aborted(self):
        for entry in corpus.ALL_ANOMALIES:
            result = repair(entry.history, L.PL_3)
            assert 0 not in result.aborted or 0 not in entry.history.committed

    def test_setup_transactions_never_aborted(self):
        result = repair(corpus.LOST_UPDATE.history)
        assert 0 not in result.aborted  # T0 is the setup state

    def test_describe(self):
        result = repair(corpus.LOST_UPDATE.history)
        assert "yields PL-3" in result.describe()
        clean = repair(parse_history("w1(x1) c1"))
        assert "nothing to abort" in clean.describe()

    @pytest.mark.parametrize("target", [L.PL_1, L.PL_2, L.PL_2_99, L.PL_3])
    def test_whole_corpus_repairable_to_any_level(self, target):
        for entry in corpus.ALL_ANOMALIES:
            result = repair(entry.history, target)
            assert repro.satisfies(result.history, target).ok, entry.name

    def test_conflicted_synthetic_histories(self):
        for seed in range(5):
            h = synthetic_history(
                n_txns=15,
                n_objects=3,
                ops_per_txn=4,
                write_fraction=0.6,
                stale_read_fraction=0.7,
                seed=seed,
            )
            result = repair(h, L.PL_3)
            assert repro.satisfies(result.history, L.PL_3).ok
            # the repair should not nuke everything
            assert len(result.history.committed) >= 1
