"""REPAIR — offline certification: "some of them will be forced to abort".

Section 3 describes optimistic schemes as aborting whichever transactions
would break the level.  :func:`repro.analysis.repair.repair` is the offline
version; this bench measures it and asserts its contract:

* every corpus anomaly is certified to PL-3 by aborting exactly one
  transaction (the witnesses are minimal, and the victim chooser avoids
  needless cascades);
* heavily conflicted synthetic histories certify to PL-3 while keeping a
  healthy majority of their transactions;
* the result always provides the target level.
"""

from __future__ import annotations


import repro
from repro.analysis.repair import repair
from repro.core.levels import IsolationLevel as L
from repro.workloads.anomalies import ALL_ANOMALIES
from repro.workloads.generator import synthetic_history


def test_repair_anomaly_corpus(benchmark, record_table):
    broken = [
        entry for entry in ALL_ANOMALIES if not entry.provides[L.PL_3]
    ]

    def run():
        return [(entry.name, repair(entry.history, L.PL_3)) for entry in broken]

    results = benchmark(run)
    lines = ["REPAIR — corpus certification to PL-3", ""]
    # Every anomaly repairs with one abort, except mutual information flow,
    # where keeping either transaction would leave it having read aborted
    # data — two aborts is genuinely minimal there.
    expected_aborts = {
        "circular-information-flow": 2,
        "three-way-information-ring": 3,  # the cascade wraps the whole ring
    }
    for name, result in results:
        assert repro.satisfies(result.history, L.PL_3).ok
        assert len(result.aborted) == expected_aborts.get(name, 1), (
            f"{name}: {result.aborted}"
        )
        victims = ", ".join(f"T{t}" for t in sorted(result.aborted))
        lines.append(f"  {name:28} abort {victims}")
    record_table("repair_corpus", "\n".join(lines))


def test_repair_conflicted_histories(benchmark, record_table):
    histories = [
        synthetic_history(
            n_txns=20,
            n_objects=4,
            ops_per_txn=4,
            write_fraction=0.6,
            stale_read_fraction=0.6,
            seed=seed,
        )
        for seed in range(6)
    ]

    def run():
        return [repair(h, L.PL_3) for h in histories]

    results = benchmark(run)
    lines = ["REPAIR — conflicted synthetic histories (20 txns each)", ""]
    survived_total = 0
    for seed, (history, result) in enumerate(zip(histories, results)):
        assert repro.satisfies(result.history, L.PL_3).ok
        survivors = len(result.history.committed)
        survived_total += survivors
        lines.append(
            f"  seed {seed}: aborted {len(result.aborted):>2}, "
            f"{survivors:>2} transactions survive"
        )
    assert survived_total > 0
    record_table("repair_synthetic", "\n".join(lines))
