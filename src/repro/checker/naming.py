"""Classical anomaly names for detected phenomena.

The formalism speaks in cycles and phenomena; practitioners speak in
anomaly names (dirty read, lost update, write skew, ...).  This module maps
a history's witnesses to the classical vocabulary so checker reports read
like an incident writeup instead of graph theory:

* G1a → *dirty read* (aborted read) / *aborted predicate read*;
* G1b → *intermediate read*;
* G0 → *dirty write*;
* G1c → *circular information flow*;
* single-anti cycles → *lost update* (anti + ww on the same object),
  *fuzzy read* (anti + wr on the same object), or *read skew* (across
  objects); with a predicate anti edge, *phantom*;
* multi-anti cycles → *write skew* (two antis over disjoint objects) or a
  general *anti-dependency cycle*.

Naming is heuristic in the best sense: every name is justified by the edge
structure of an actual witness cycle, and the anomaly-corpus tests pin each
classical anomaly to its expected name.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..core.conflicts import DepKind
from ..core.dsg import Cycle
from ..core.phenomena import Analysis, Phenomenon, Witness

__all__ = ["NamedAnomaly", "name_cycle", "name_anomalies"]


@dataclass(frozen=True)
class NamedAnomaly:
    """A classical anomaly found in a history."""

    name: str
    phenomenon: Phenomenon
    witness: Witness

    def describe(self) -> str:
        return f"{self.name} [{self.phenomenon}]: {self.witness.description}"


def name_cycle(cycle: Cycle) -> str:
    """The classical name for a witness cycle, from its edge structure."""
    antis = [e for e in cycle.edges if e.kind is DepKind.RW]
    wws = [e for e in cycle.edges if e.kind is DepKind.WW]
    wrs = [e for e in cycle.edges if e.kind is DepKind.WR]
    pred_antis = [e for e in antis if e.via_predicate]

    if not antis:
        if not wrs:
            return "dirty write"
        return "circular information flow"

    if pred_antis:
        return "phantom"

    if len(antis) == 1:
        anti = antis[0]
        if any(e.obj == anti.obj for e in wws):
            return "lost update"
        if any(e.obj == anti.obj for e in wrs):
            return "fuzzy read"
        return "read skew"

    objs = {e.obj for e in antis}
    if len(antis) == 2 and len(objs) == 2 and not wws and not wrs:
        return "write skew"
    return "anti-dependency cycle"


_READ_PHENOMENA = {
    Phenomenon.G1A: "dirty read",
    Phenomenon.G1B: "intermediate read",
}

#: Cycle phenomena consulted, most specific first so each distinct anomaly
#: is reported once with its sharpest witness.
_CYCLE_PHENOMENA: Tuple[Phenomenon, ...] = (
    Phenomenon.G0,
    Phenomenon.G1C,
    Phenomenon.G_SINGLE,
    Phenomenon.G2_ITEM,
    Phenomenon.G2,
)


def name_anomalies(analysis: Analysis) -> List[NamedAnomaly]:
    """Every named anomaly the analysis can justify, deduplicated by name.

    Accepts an :class:`~repro.core.phenomena.Analysis` (so the expensive
    graph work is shared with whatever else the caller is doing).
    """
    out: List[NamedAnomaly] = []
    seen: set = set()

    for phenomenon, base_name in _READ_PHENOMENA.items():
        report = analysis.report(phenomenon)
        for witness in report.witnesses:
            name = base_name
            if "predicate" in witness.description:
                name = f"{base_name} (predicate)"
            key = (name, witness.description)
            if key not in seen:
                seen.add(key)
                out.append(NamedAnomaly(name, phenomenon, witness))

    for phenomenon in _CYCLE_PHENOMENA:
        report = analysis.report(phenomenon)
        for witness in report.witnesses:
            if witness.cycle is None:
                continue
            name = name_cycle(witness.cycle)
            if name not in {a.name for a in out}:
                out.append(NamedAnomaly(name, phenomenon, witness))
    return out
