"""Service-layer configuration: frozen, keyword-only dataclasses.

Every knob of the client/server stack lives in one of three configs —
:class:`NetworkConfig` (the simulated unreliable network),
:class:`RetryPolicy` (client timeout/retry/backoff behaviour) and
:class:`~repro.engine.factory.SchedulerConfig` (the engine under the
server, re-exported here).  All three are frozen and keyword-only: a
config value is an immutable fact about a run, and two runs built from
equal configs and seeds replay bit-identically.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Optional, Tuple

from ..engine.factory import SchedulerConfig

__all__ = [
    "AdmissionConfig",
    "ClusterConfig",
    "MapChange",
    "NetworkConfig",
    "RetryPolicy",
    "SchedulerConfig",
    "SessionGuarantees",
    "StressConfig",
]


@dataclass(frozen=True, kw_only=True)
class NetworkConfig:
    """Fault schedule of the simulated network (labrpc-style, but fully
    deterministic: one seeded RNG, logical-tick delays, no threads).

    Probabilities apply independently to every message — requests *and*
    replies — so a lost reply after an applied write really happens, which
    is exactly the case idempotency tokens exist for.
    """

    #: RNG seed for every network fault decision.
    seed: int = 0
    #: P(message silently lost).
    drop: float = 0.0
    #: P(message delivered a second time, at an independent delay).
    duplicate: float = 0.0
    #: Delivery delay bounds in logical ticks (inclusive); with
    #: ``min_delay < max_delay`` messages genuinely reorder.
    min_delay: int = 1
    max_delay: int = 1

    def __post_init__(self) -> None:
        if not (0.0 <= self.drop < 1.0):
            raise ValueError("drop must be in [0, 1)")
        if not (0.0 <= self.duplicate <= 1.0):
            raise ValueError("duplicate must be in [0, 1]")
        if self.min_delay < 0 or self.max_delay < self.min_delay:
            raise ValueError("need 0 <= min_delay <= max_delay")

    @property
    def faulty(self) -> bool:
        """Whether any fault is enabled (zero-fault runs skip the RNG for
        delays only when the bounds pin them)."""
        return self.drop > 0 or self.duplicate > 0 or self.min_delay != self.max_delay

    def with_seed(self, seed: int) -> "NetworkConfig":
        return replace(self, seed=seed)


@dataclass(frozen=True, kw_only=True)
class AdmissionConfig:
    """Server-side admission control and certification backpressure.

    With ``max_active`` set, a ``begin`` that would push the number of
    concurrently active transactions past the bound is **load-shed**: the
    server answers ``{"error": "shed", "retry_after": ticks}`` without
    touching the engine, and the client backs off for the server-directed
    interval before retrying the same idempotency token.  ``shed_probability``
    makes the bound soft: above the bound each begin is shed with that
    seeded probability (1.0 = hard bound); draws come from the server's own
    admission RNG, so shedding replays identically per seed.

    ``on_uncertified`` wires :mod:`repro.analysis.repair` into the serve
    path: when a live certification fails (a committed transaction's
    declared level was violated), the server either

    * ``"ignore"`` — record the verdict only (the default);
    * ``"downgrade"`` — downgrade *the session*: subsequent transactions
      on the violating session are declared at the strongest level the
      monitor still certifies (emitted as an ``admission.downgrade`` trace
      event);
    * ``"repair"`` — compute the abort-to-restore suggestion (which
      committed transactions would have to abort, cascades included, for
      the history to provide the declared level again) and emit it as an
      ``admission.repair`` trace event plus
      :attr:`~repro.service.server.Server.repair_suggestions`.
    """

    #: Maximum concurrently active transactions (0 disables shedding).
    max_active: int = 0
    #: Ticks the shed reply tells the client to stay away.
    retry_after: int = 8
    #: P(shed | over the bound); draws are seeded (see ``seed``).
    shed_probability: float = 1.0
    #: RNG seed for the soft-bound shed draws.
    seed: int = 0
    #: Reaction to a failed live certification; see class docstring.
    on_uncertified: str = "ignore"
    #: Certify commits in batches of this size instead of one by one —
    #: commits awaiting a verdict are the *certification lag*.  1 keeps
    #: today's certify-every-commit behaviour (replies carry the verdict).
    certify_every: int = 1

    def __post_init__(self) -> None:
        if self.max_active < 0 or self.retry_after < 1:
            raise ValueError("need max_active >= 0 and retry_after >= 1")
        if not (0.0 <= self.shed_probability <= 1.0):
            raise ValueError("shed_probability must be in [0, 1]")
        if self.on_uncertified not in ("ignore", "downgrade", "repair"):
            raise ValueError(
                "on_uncertified must be 'ignore', 'downgrade' or 'repair'"
            )
        if self.certify_every < 1:
            raise ValueError("certify_every must be >= 1")


@dataclass(frozen=True, kw_only=True)
class RetryPolicy:
    """Client-side timeout/retry/backoff policy.

    All durations are logical network ticks.  Retries reuse the original
    request's idempotency token, so a retry can never double-apply an
    operation the server already executed.
    """

    #: Attempts per logical operation (first try included).
    max_attempts: int = 10
    #: Ticks to wait for a reply before retrying.
    timeout: int = 20
    #: Backoff before retry *n* is ``backoff * factor**(n-1)``, capped.
    backoff: int = 2
    factor: float = 2.0
    max_backoff: int = 64

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.timeout < 1 or self.backoff < 0 or self.max_backoff < 0:
            raise ValueError("timeout must be >= 1 and backoffs >= 0")
        if self.factor < 1.0:
            raise ValueError("factor must be >= 1.0")

    def backoff_before(self, attempt: int) -> int:
        """Ticks of backoff before retry ``attempt`` (attempt 1 = first
        retry).  Deterministic — the schedule is part of the observable
        history, so no jitter."""
        if attempt < 1:
            return 0
        return min(int(self.backoff * self.factor ** (attempt - 1)), self.max_backoff)

    def schedule(self) -> tuple:
        """The full backoff schedule, one entry per possible retry."""
        return tuple(
            self.backoff_before(n) for n in range(1, self.max_attempts)
        )


@dataclass(frozen=True, kw_only=True)
class MapChange:
    """One scheduled shard-map reconfiguration, triggered when the
    cluster-wide committed-transaction count reaches ``after_commits``
    (commit counts are deterministic per seed, so the schedule replays
    byte-for-byte).

    ``kind="migrate"`` moves one hash slot — and the committed state of
    every key in it — from its current owner to ``to_shard``.
    ``kind="replace"`` retires shard ``shard``'s endpoint and brings up a
    replacement endpoint recovered from the same durable recorder log (the
    regression case for clients retrying a commit against the old name).
    ``kind="promote"`` drains the replication stream of shard ``shard``,
    retires its primary and promotes backup ``replica`` (0-based ordinal)
    to primary under the backup's own endpoint name — the planned-failover
    reconfiguration of a replicated shard.  Every change waits until the
    affected source shard is quiescent (no active or prepared
    transactions), then applies atomically between delivery sweeps.
    """

    #: Apply once the cluster-wide commit count reaches this.
    after_commits: int
    #: ``"migrate"``, ``"replace"`` or ``"promote"``.
    kind: str
    #: Hash slot to move (``migrate`` only).
    slot: Optional[int] = None
    #: Destination shard index (``migrate`` only).
    to_shard: Optional[int] = None
    #: Shard index whose endpoint is replaced/promoted
    #: (``replace``/``promote``).
    shard: Optional[int] = None
    #: Backup ordinal to promote (``promote`` only).
    replica: Optional[int] = None

    def __post_init__(self) -> None:
        if self.after_commits < 0:
            raise ValueError("after_commits must be >= 0")
        if self.kind == "migrate":
            if self.slot is None or self.to_shard is None:
                raise ValueError("migrate changes need slot= and to_shard=")
        elif self.kind == "replace":
            if self.shard is None:
                raise ValueError("replace changes need shard=")
        elif self.kind == "promote":
            if self.shard is None or self.replica is None:
                raise ValueError("promote changes need shard= and replica=")
        else:
            raise ValueError("kind must be 'migrate', 'replace' or 'promote'")


@dataclass(frozen=True, kw_only=True)
class SessionGuarantees:
    """Bayou-style per-session guarantees for replica-served reads.

    A session tracks a vector of per-shard *watermarks* — replication-log
    offsets of the primary WAL.  Commit replies raise the session's write
    watermark for every participant shard; replica read replies raise the
    read watermark.  A guarantee turns a watermark into a floor the next
    replica read must satisfy:

    * ``read_your_writes`` — reads must reflect the session's own
      committed writes (floor = write watermark);
    * ``monotonic_reads`` — reads never observe state older than a state
      the session already observed (floor = read watermark);
    * ``causal`` — both, plus every offset the session has learned from
      any reply (floor = the merged session vector), the per-shard
      approximation of causal consistency.

    ``on_lag`` picks what happens when the chosen replica is behind the
    floor: ``"redirect"`` re-routes that read to the shard primary (fresh
    by construction), ``"wait"`` backs off and retries the same replica
    until it catches up.  With every guarantee off the session reads
    stale-by-choice: no floor is sent, and the client instead *records* a
    violation witness whenever a reply would have broken a guarantee.
    """

    read_your_writes: bool = False
    monotonic_reads: bool = False
    causal: bool = False
    #: ``"redirect"`` or ``"wait"`` — reaction to a lagging replica.
    on_lag: str = "redirect"

    def __post_init__(self) -> None:
        if self.on_lag not in ("redirect", "wait"):
            raise ValueError("on_lag must be 'redirect' or 'wait'")

    @property
    def enforced(self) -> bool:
        """Whether any guarantee is switched on."""
        return self.read_your_writes or self.monotonic_reads or self.causal

    @classmethod
    def parse(cls, text: str) -> "SessionGuarantees":
        """Build from a CLI-style spec: comma-separated guarantee names
        (``ryw``/``read-your-writes``, ``mr``/``monotonic-reads``,
        ``causal``), optionally ``wait`` or ``redirect``; ``none`` or an
        empty string disables everything."""
        kwargs: dict = {}
        for raw in text.split(","):
            token = raw.strip().lower().replace("_", "-")
            if token in ("", "none", "off"):
                continue
            elif token in ("ryw", "read-your-writes"):
                kwargs["read_your_writes"] = True
            elif token in ("mr", "monotonic-reads"):
                kwargs["monotonic_reads"] = True
            elif token == "causal":
                kwargs["causal"] = True
            elif token in ("wait", "redirect"):
                kwargs["on_lag"] = token
            else:
                raise ValueError(f"unknown session guarantee {raw.strip()!r}")
        return cls(**kwargs)


@dataclass(frozen=True, kw_only=True)
class ClusterConfig:
    """Shape and fault schedule of a sharded cluster (mirrors
    :class:`~repro.engine.factory.SchedulerConfig` / :class:`NetworkConfig`:
    frozen, keyword-only, fully deterministic).

    A cluster is ``shards`` deterministic servers, each owning the hash
    slots the versioned :class:`~repro.service.shardmap.ShardMap` assigns
    it, plus a two-phase-commit coordinator endpoint for cross-shard
    transactions.  ``map_changes`` schedules mid-run reconfigurations;
    the ``*_after_prepares`` knobs schedule the cross-shard fault matrix
    (a shard crash between prepare and commit, the coordinator partitioned
    mid-prepare) at deterministic points in the 2PC message flow.
    """

    #: Number of shard servers.
    shards: int = 2
    #: Hash slots in the shard map (keys hash to slots, slots to shards).
    slots: int = 16
    #: Scheduled reconfigurations, applied in order.
    map_changes: Tuple[MapChange, ...] = ()
    #: Coordinator retransmit period for unacked prepare/decide messages
    #: (the 2PC timeout; logical ticks).
    retry_every: int = 25
    #: Crash shard ``(index, n)`` right after it executes its ``n``-th
    #: prepare — between prepare and commit, the WAL-recovery fault case.
    crash_shard_after_prepares: Optional[Tuple[int, int]] = None
    #: Ticks until a fault-schedule-crashed shard restarts.
    shard_restart_delay: int = 30
    #: Partition the coordinator away from every shard once it has sent
    #: this many prepares (mid-prepare), healing after ``heal_after``.
    partition_coordinator_after_prepares: Optional[int] = None
    #: Ticks until the coordinator partition heals.
    heal_after: int = 40
    #: Coordinator endpoint name.
    coordinator: str = "coord"
    #: Backups per shard (0 = unreplicated; the primary then ships no
    #: replication log and the run is byte-identical to the plain path).
    replicas: int = 0
    #: Replication pump period: every this many ticks a primary ships its
    #: unacknowledged WAL suffix to each backup (logical ticks).
    replication_every: int = 4
    #: Seeded shipping-delay bounds per replication batch (inclusive
    #: ticks) — the lag distribution replica reads observe.
    replication_lag: Tuple[int, int] = (1, 4)
    #: Crash backup ``(shard, replica, n)`` once it has applied ``n`` log
    #: entries — the backup-crash-mid-catch-up fault case; it restarts
    #: from its durable log after ``replica_restart_delay``.
    crash_replica_after_applies: Optional[Tuple[int, int, int]] = None
    #: Ticks until a fault-schedule-crashed backup restarts.
    replica_restart_delay: int = 30
    #: Partition shard ``(index)``'s primary from everything once the
    #: cluster-wide commit count reaches ``(commits)`` — backups keep
    #: serving (stale) reads; heals after ``heal_after``.
    partition_primary_after_commits: Optional[Tuple[int, int]] = None

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ValueError("shards must be >= 1")
        if self.slots < self.shards:
            raise ValueError("need at least one slot per shard")
        if self.retry_every < 1:
            raise ValueError("retry_every must be >= 1")
        if self.shard_restart_delay < 1 or self.heal_after < 1:
            raise ValueError("restart/heal delays must be >= 1")
        try:
            changes = tuple(self.map_changes)
        except TypeError:
            raise TypeError(
                "map_changes must be a tuple of MapChange entries"
            ) from None
        if any(not isinstance(c, MapChange) for c in changes):
            raise TypeError("map_changes must be a tuple of MapChange entries")
        object.__setattr__(self, "map_changes", changes)
        for change in changes:
            if change.kind == "migrate":
                if not (0 <= change.slot < self.slots):
                    raise ValueError(f"migrate slot {change.slot} out of range")
                if not (0 <= change.to_shard < self.shards):
                    raise ValueError(
                        f"migrate to_shard {change.to_shard} out of range"
                    )
            elif not (0 <= change.shard < self.shards):
                raise ValueError(f"replace shard {change.shard} out of range")
            elif change.kind == "promote" and not (
                0 <= change.replica < self.replicas
            ):
                raise ValueError(
                    f"promote replica {change.replica} out of range"
                )
        if self.crash_shard_after_prepares is not None:
            shard, count = self.crash_shard_after_prepares
            if not (0 <= shard < self.shards) or count < 1:
                raise ValueError(
                    "crash_shard_after_prepares is (shard index, nth prepare)"
                )
        if (
            self.partition_coordinator_after_prepares is not None
            and self.partition_coordinator_after_prepares < 1
        ):
            raise ValueError(
                "partition_coordinator_after_prepares must be >= 1"
            )
        if self.replicas < 0:
            raise ValueError("replicas must be >= 0")
        if self.replication_every < 1:
            raise ValueError("replication_every must be >= 1")
        lag_min, lag_max = self.replication_lag
        if lag_min < 1 or lag_max < lag_min:
            raise ValueError("need 1 <= replication_lag[0] <= [1]")
        if self.crash_replica_after_applies is not None:
            shard, replica, count = self.crash_replica_after_applies
            if (
                not (0 <= shard < self.shards)
                or not (0 <= replica < self.replicas)
                or count < 1
            ):
                raise ValueError(
                    "crash_replica_after_applies is (shard, replica, "
                    "nth applied log entry)"
                )
        if self.replica_restart_delay < 1:
            raise ValueError("replica_restart_delay must be >= 1")
        if self.partition_primary_after_commits is not None:
            shard, commits = self.partition_primary_after_commits
            if not (0 <= shard < self.shards) or commits < 0:
                raise ValueError(
                    "partition_primary_after_commits is (shard, commits)"
                )

    def shard_names(self) -> Tuple[str, ...]:
        return tuple(f"shard{i}" for i in range(self.shards))

    def replica_names(self, shard: int) -> Tuple[str, ...]:
        """Endpoint names of shard ``shard``'s backups."""
        return tuple(
            f"shard{shard}.r{j + 1}" for j in range(self.replicas)
        )


@dataclass(frozen=True, kw_only=True)
class StressConfig:
    """Everything that shapes one :func:`~repro.service.stress.run_stress`
    run, as a single frozen config (the former kwarg pile).

    Two runs built from equal configs replay byte-for-byte.  The loose
    keyword arguments ``run_stress`` used to take are still accepted as a
    thin deprecation shim; new code builds a ``StressConfig`` and passes it
    to :func:`~repro.service.stress.run_stress`,
    :func:`~repro.service.capacity.run_capacity` or the CLI.
    """

    #: Engine under the server(s): a family name or full config.
    scheduler: Any = "locking"
    #: Declared isolation level for every transaction (None = natural).
    level: Optional[Any] = None
    #: Concurrent client sessions (the worker pool in open-loop mode).
    clients: int = 4
    #: Closed-loop commit quota per client (ignored in open-loop mode).
    txns_per_client: int = 25
    #: Size of the hot key space (``k0 .. k{keys-1}``).
    keys: int = 8
    #: Read-modify-write pairs per transaction.
    ops_per_txn: int = 2
    #: Master seed (driver, scripts, network fault schedule).
    seed: int = 0
    #: Simulated-network fault schedule (None = default, re-seeded).
    network: Optional[NetworkConfig] = None
    #: Client retry/backoff policy (None = default).
    retry: Optional[RetryPolicy] = None
    #: Crash the server (shard 0 in cluster mode) after N commits.
    crash_after_commits: Optional[int] = None
    #: Ticks until the crashed server restarts.
    restart_delay: int = 25
    #: Hard budget on the run's logical ticks.
    max_ticks: int = 2_000_000
    #: Deliver due message batches in one sweep (byte-identical either way).
    pipeline: bool = True
    #: Open-loop arrival process (None = closed loop).
    arrivals: Optional[Any] = None
    #: Offered-load horizon in ticks (open loop only).
    horizon: Optional[int] = None
    #: Zipf-skewed key sampler (None = uniform picks).
    hot_keys: Optional[Any] = None
    #: Server-side admission control / certification batching.
    admission: Optional[AdmissionConfig] = None
    #: A WindowedTelemetry to feed (purely observational).
    windows: Optional[Any] = None
    #: Run against a sharded cluster instead of one server.
    cluster: Optional[ClusterConfig] = None
    #: Where plain (non-locking) reads go in a replicated cluster:
    #: ``"primary"``, ``"replica"`` (rotate over backups) or ``"nearest"``
    #: (one deterministic session-pinned endpoint, primary included).
    read_preference: str = "primary"
    #: Per-session guarantees for replica reads (None = stale-by-choice).
    session_guarantees: Optional[SessionGuarantees] = None
    #: Fraction of transactions that are pure read-only (no writes, plain
    #: reads that honour ``read_preference``); 0.0 draws nothing and keeps
    #: unreplicated runs byte-identical to earlier releases.
    read_only_fraction: float = 0.0

    def __post_init__(self) -> None:
        if self.clients < 1 or self.txns_per_client < 0:
            raise ValueError("need clients >= 1 and txns_per_client >= 0")
        if self.keys < 1 or self.ops_per_txn < 1:
            raise ValueError("need keys >= 1 and ops_per_txn >= 1")
        if self.arrivals is not None and self.horizon is None:
            raise ValueError(
                "open-loop runs need horizon= (ticks of offered load)"
            )
        if self.read_preference not in ("primary", "replica", "nearest"):
            raise ValueError(
                "read_preference must be 'primary', 'replica' or 'nearest'"
            )
        if not (0.0 <= self.read_only_fraction <= 1.0):
            raise ValueError("read_only_fraction must be in [0, 1]")
