#!/usr/bin/env python3
"""Audit pipeline: capture → ship → analyse, the way a deployment would.

A production-shaped workflow for the checker:

1. **capture** — run a workload against a database (here: the bundled MV
   read-committed engine, a stand-in for any system under test) and record
   the execution as an Adya history;
2. **ship** — serialize the history to JSON (the wire format; predicates
   are snapshotted extensionally so nothing executable crosses the wire);
3. **analyse** — in a "different process", reload the JSON and run the full
   analysis: level verdicts, classical anomaly names, live-transaction
   commit tests, summary statistics — and, when anomalies are found, the
   *repair*: which transactions a serializable certifier would have had to
   refuse.

Run:  python examples/audit_pipeline.py
"""

import json

import repro
from repro.analysis import history_stats
from repro.core.serialize import dumps, loads
from repro.engine import Database, ReadCommittedMVScheduler, Simulator
from repro.workloads import bank_programs, initial_balances


def capture() -> str:
    """Run the workload; return the execution as a JSON document."""
    db = Database(ReadCommittedMVScheduler())
    db.load(initial_balances(4))
    Simulator(db, bank_programs(n_accounts=4, seed=3), seed=3).run()

    # Before the last transaction ends, ask the live engine the
    # Section 5.6 question: could a fresh reader commit serializably now?
    probe = db.begin()
    probe.read("acct0")
    print("live commit test for a fresh reader:", db.could_commit(probe))
    probe.abort()

    return dumps(db.history(), indent=2)


def analyse(document: str) -> None:
    """The receiving side: reload and judge."""
    history = loads(document)
    print(f"\nreloaded {history_stats(history).describe()}")

    report = repro.check(history, extensions=True)
    print(f"\nstrongest level: {report.strongest_level}")

    anomalies = report.named_anomalies()
    if anomalies:
        print("anomalies found:")
        for anomaly in anomalies:
            print(f"  - {anomaly.describe()}")
    else:
        print("no anomalies — the run was serializable")

    print("\nverdicts:")
    for level in report.levels:
        print(f"  {level}: {'PROVIDED' if report.ok(level) else 'violated'}")

    if not report.serializable:
        from repro.analysis import repair

        result = repair(history)
        print(f"\ncertification: {result.describe()}")


def main() -> None:
    document = capture()
    size = len(document.encode())
    events = len(json.loads(document)["events"])
    print(f"\nshipped {events} events as {size} bytes of JSON")
    analyse(document)


if __name__ == "__main__":
    main()
