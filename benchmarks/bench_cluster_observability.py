"""Cluster observability guard: watching the cluster must stay cheap.

Two pins, mirroring ``bench_observability.py`` for the single-server
path:

* **instrumentation-off cluster throughput** — the observability plane
  is guarded ``is not None`` everywhere (replication shipping, 2PC
  decisions, replica reads, the windows gauges), so a bare replicated
  cluster run must stay at the ``bench_cluster`` baseline: within a
  small multiple of the same workload with ``shards=1``.
* **traced overhead** — the fully instrumented run (metrics registry +
  tracer + flight recorder, the ``repro dossier`` configuration) must
  stay within 1.5× of the bare run on the same seeds.  Span emission on
  every shipped batch, applied batch and 2PC phase is O(1) dict
  appends; the flight recorder's rings are bounded deques.
"""

from __future__ import annotations

import time
from dataclasses import replace

import pytest

from repro.observability import FlightRecorder, MetricsRegistry, Tracer
from repro.service import (
    ClusterConfig,
    NetworkConfig,
    StressConfig,
    run_stress,
)

_REPLICATED = StressConfig(
    scheduler="locking",
    clients=4,
    txns_per_client=15,
    keys=8,
    ops_per_txn=2,
    seed=17,
    network=NetworkConfig(min_delay=1, max_delay=3),
    cluster=ClusterConfig(
        shards=2, replicas=2, replication_every=12, replication_lag=(4, 10)
    ),
    read_preference="replica",
    read_only_fraction=0.5,
)


def _best_of(config: StressConfig, rounds: int = 3, **sinks) -> float:
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        run_stress(config, **{k: v() for k, v in sinks.items()})
        best = min(best, time.perf_counter() - start)
    return best


@pytest.mark.benchguard
def test_replication_off_instrumentation_costs_nothing():
    single = _best_of(
        replace(
            _REPLICATED,
            cluster=ClusterConfig(shards=1),
            read_preference="primary",
            read_only_fraction=0.0,
        )
    )
    replicated = _best_of(_REPLICATED)
    # Replication ships batches and serves replica reads, but with every
    # sink None the telemetry hooks must not add to that: pin the whole
    # replicated run to a small multiple of the single-shard run, with an
    # absolute floor against timer noise.
    assert replicated < max(single * 4, single + 0.05), (
        f"replicated bare run {replicated * 1000:.1f} ms vs single-shard "
        f"{single * 1000:.1f} ms"
    )


@pytest.mark.benchguard
def test_traced_cluster_overhead_bounded():
    bare = _best_of(_REPLICATED)
    traced = _best_of(
        _REPLICATED,
        metrics=MetricsRegistry,
        tracer=Tracer,
        flight=FlightRecorder,
    )
    assert traced < max(bare * 1.5, bare + 0.05), (
        f"traced cluster run {traced * 1000:.1f} ms vs bare "
        f"{bare * 1000:.1f} ms (> 1.5x)"
    )


def test_observability_table(record_table):
    rows = [f"{'mode':>22} {'ms':>8} {'spans':>7} {'dossiers':>8}"]
    bare = _best_of(_REPLICATED)
    rows.append(f"{'bare':>22} {bare * 1000:8.1f} {0:7d} {0:8d}")
    tracer, flight = Tracer(), FlightRecorder()
    start = time.perf_counter()
    result = run_stress(
        _REPLICATED, metrics=MetricsRegistry(), tracer=tracer, flight=flight
    )
    traced = time.perf_counter() - start
    spans = sum(1 for r in tracer.records if r["kind"] == "span")
    rows.append(
        f"{'metrics+trace+flight':>22} {traced * 1000:8.1f} "
        f"{spans:7d} {len(result.dossiers()):8d}"
    )
    record_table("cluster_observability", "\n".join(rows))
