"""The portable isolation levels (paper Section 5, Figure 6) and the
extension levels of Adya's thesis referenced in Sections 1 and 6.

Each level proscribes a set of phenomena; a history *provides* a level when
it exhibits none of them:

========  ==========================  =====================================
Level     Proscribes                  ANSI / commercial analogue
========  ==========================  =====================================
PL-1      G0                          READ UNCOMMITTED (Degree 1)
PL-2      G1                          READ COMMITTED (Degree 2)
PL-CS     G1, G-cursor                Cursor Stability
PL-2+     G1, G-single                (consistent reads, causal consistency)
PL-2.99   G1, G2-item                 REPEATABLE READ (Degree 2.99)
PL-SI     G1, G-SI                    Snapshot Isolation
PL-3      G1, G2                      SERIALIZABLE (Degree 3)
PL-SS     G1, G-SS                    strict serializability
========  ==========================  =====================================

The levels form a partial order under "provides at least the guarantees of"
(:meth:`IsolationLevel.implies`): the ANSI chain PL-1 < PL-2 < PL-2.99 < PL-3
is total; PL-2+ sits between PL-2 and both PL-SI and PL-3; PL-SI and PL-3
are incomparable (snapshot isolation permits write skew, serializability
permits non-start-ordered reads); PL-2.99 and PL-SI are incomparable;
PL-SS (strict serializability) sits above PL-3 but does not imply PL-SI.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, FrozenSet, Optional, Sequence, Tuple

from .conflicts import PredicateDepMode
from .history import History
from .phenomena import Analysis, Phenomenon, PhenomenonReport

__all__ = ["IsolationLevel", "LevelVerdict", "satisfies", "classify", "ANSI_CHAIN"]


class IsolationLevel(Enum):
    """Portable ("PL") isolation levels."""

    PL_1 = "PL-1"
    PL_2 = "PL-2"
    PL_CS = "PL-CS"
    PL_2PLUS = "PL-2+"
    PL_2_99 = "PL-2.99"
    PL_SI = "PL-SI"
    PL_3 = "PL-3"
    PL_SS = "PL-SS"

    def __str__(self) -> str:
        return self.value

    # ------------------------------------------------------------------

    @property
    def proscribed(self) -> Tuple[Phenomenon, ...]:
        """The phenomena this level disallows (Figure 6)."""
        return _PROSCRIBED[self]

    def implies(self, other: "IsolationLevel") -> bool:
        """Whether providing this level guarantees ``other`` as well."""
        return other in _IMPLIES[self]

    @classmethod
    def from_string(cls, name: str) -> "IsolationLevel":
        """Parse a level name; ANSI names and common aliases accepted."""
        key = name.strip().upper().replace(" ", "-").replace("_", "-")
        try:
            return _ALIASES[key]
        except KeyError:
            raise KeyError(f"unknown isolation level {name!r}") from None


_PROSCRIBED: Dict[IsolationLevel, Tuple[Phenomenon, ...]] = {
    IsolationLevel.PL_1: (Phenomenon.G0,),
    IsolationLevel.PL_2: (Phenomenon.G1,),
    IsolationLevel.PL_CS: (Phenomenon.G1, Phenomenon.G_CURSOR),
    IsolationLevel.PL_2PLUS: (Phenomenon.G1, Phenomenon.G_SINGLE),
    IsolationLevel.PL_2_99: (Phenomenon.G1, Phenomenon.G2_ITEM),
    IsolationLevel.PL_SI: (Phenomenon.G1, Phenomenon.G_SI),
    IsolationLevel.PL_3: (Phenomenon.G1, Phenomenon.G2),
    IsolationLevel.PL_SS: (Phenomenon.G1, Phenomenon.G_SS),
}

# "X implies Y" = proscribing X's phenomena proscribes Y's as well.  The
# containments are: G1c ⊇ G0; G2 ⊇ G2-item ⊇ G-cursor; G2 ⊇ G-single;
# G-SIb ⊇ G-single ⊇ (lost-update cycles) ⊇ G-cursor.
_IMPLIES: Dict[IsolationLevel, FrozenSet[IsolationLevel]] = {
    IsolationLevel.PL_1: frozenset({IsolationLevel.PL_1}),
    IsolationLevel.PL_2: frozenset({IsolationLevel.PL_1, IsolationLevel.PL_2}),
    IsolationLevel.PL_CS: frozenset(
        {IsolationLevel.PL_1, IsolationLevel.PL_2, IsolationLevel.PL_CS}
    ),
    IsolationLevel.PL_2PLUS: frozenset(
        {
            IsolationLevel.PL_1,
            IsolationLevel.PL_2,
            IsolationLevel.PL_CS,
            IsolationLevel.PL_2PLUS,
        }
    ),
    IsolationLevel.PL_2_99: frozenset(
        {
            IsolationLevel.PL_1,
            IsolationLevel.PL_2,
            IsolationLevel.PL_CS,
            IsolationLevel.PL_2_99,
        }
    ),
    IsolationLevel.PL_SI: frozenset(
        {
            IsolationLevel.PL_1,
            IsolationLevel.PL_2,
            IsolationLevel.PL_CS,
            IsolationLevel.PL_2PLUS,
            IsolationLevel.PL_SI,
        }
    ),
    IsolationLevel.PL_3: frozenset(
        {
            IsolationLevel.PL_1,
            IsolationLevel.PL_2,
            IsolationLevel.PL_CS,
            IsolationLevel.PL_2PLUS,
            IsolationLevel.PL_2_99,
            IsolationLevel.PL_3,
        }
    ),
    # G-SS covers every SSG cycle with an anti or start edge, which includes
    # every G2 cycle and every G-single cycle; it does not cover G-SIa.
    IsolationLevel.PL_SS: frozenset(
        {
            IsolationLevel.PL_1,
            IsolationLevel.PL_2,
            IsolationLevel.PL_CS,
            IsolationLevel.PL_2PLUS,
            IsolationLevel.PL_2_99,
            IsolationLevel.PL_3,
            IsolationLevel.PL_SS,
        }
    ),
}

_ALIASES: Dict[str, IsolationLevel] = {
    "PL-1": IsolationLevel.PL_1,
    "PL1": IsolationLevel.PL_1,
    "READ-UNCOMMITTED": IsolationLevel.PL_1,
    "DEGREE-1": IsolationLevel.PL_1,
    "PL-2": IsolationLevel.PL_2,
    "PL2": IsolationLevel.PL_2,
    "READ-COMMITTED": IsolationLevel.PL_2,
    "DEGREE-2": IsolationLevel.PL_2,
    "PL-CS": IsolationLevel.PL_CS,
    "CURSOR-STABILITY": IsolationLevel.PL_CS,
    "PL-2+": IsolationLevel.PL_2PLUS,
    "PL2+": IsolationLevel.PL_2PLUS,
    "PL-2.99": IsolationLevel.PL_2_99,
    "PL2.99": IsolationLevel.PL_2_99,
    "REPEATABLE-READ": IsolationLevel.PL_2_99,
    "DEGREE-2.99": IsolationLevel.PL_2_99,
    "PL-SI": IsolationLevel.PL_SI,
    "SNAPSHOT-ISOLATION": IsolationLevel.PL_SI,
    "SI": IsolationLevel.PL_SI,
    "PL-3": IsolationLevel.PL_3,
    "PL3": IsolationLevel.PL_3,
    "SERIALIZABLE": IsolationLevel.PL_3,
    "DEGREE-3": IsolationLevel.PL_3,
    "PL-SS": IsolationLevel.PL_SS,
    "STRICT-SERIALIZABLE": IsolationLevel.PL_SS,
    "STRICT-SERIALIZABILITY": IsolationLevel.PL_SS,
}

#: The ANSI chain of Figure 6, weakest first; ``classify`` walks it.
ANSI_CHAIN: Tuple[IsolationLevel, ...] = (
    IsolationLevel.PL_1,
    IsolationLevel.PL_2,
    IsolationLevel.PL_2_99,
    IsolationLevel.PL_3,
)


@dataclass(frozen=True)
class LevelVerdict:
    """Whether a history provides a level, with the violating phenomena."""

    level: IsolationLevel
    ok: bool
    violations: Tuple[PhenomenonReport, ...] = ()

    def describe(self) -> str:
        if self.ok:
            return f"{self.level}: PROVIDED"
        lines = [f"{self.level}: VIOLATED"]
        for report in self.violations:
            lines.append("  " + report.describe().replace("\n", "\n  "))
        return "\n".join(lines)

    def __bool__(self) -> bool:
        return self.ok


def satisfies(
    history: History,
    level: IsolationLevel,
    *,
    analysis: Optional[Analysis] = None,
    mode: PredicateDepMode = PredicateDepMode.LATEST,
) -> LevelVerdict:
    """Test one level against one (committed-transaction) history.

    These are the paper's *committed-transaction* guarantees (Section 5.6):
    nothing constrains transactions while they run.
    """
    analysis = analysis or Analysis(history, mode)
    violations = tuple(
        report for p in level.proscribed if (report := analysis.report(p)).present
    )
    return LevelVerdict(level, not violations, violations)


def classify(
    history: History,
    *,
    levels: Sequence[IsolationLevel] = ANSI_CHAIN,
    analysis: Optional[Analysis] = None,
    mode: PredicateDepMode = PredicateDepMode.LATEST,
) -> Optional[IsolationLevel]:
    """The strongest level of ``levels`` (default: the ANSI chain, which is
    totally ordered) that the history provides; ``None`` if even the weakest
    fails (a history below PL-1, i.e. exhibiting G0)."""
    analysis = analysis or Analysis(history, mode)
    strongest: Optional[IsolationLevel] = None
    for level in levels:
        if satisfies(history, level, analysis=analysis).ok:
            if strongest is None or level.implies(strongest):
                strongest = level
    return strongest
