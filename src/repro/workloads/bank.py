"""Bank-transfer workload: the multi-object invariant of Section 3.

The paper's running example is a pair of objects with the invariant
``x + y = 10`` that weakly isolated readers observe violated (histories H1
and H2).  This workload generalises it: ``n_accounts`` accounts with a fixed
total balance, concurrent transfers that preserve the invariant, and audit
transactions that read every account and record the sum they saw.

Helpers then judge the run the way the paper does:

* :func:`conserved` — did committed transfers preserve the total?
* :func:`audit_violations` — which committed audits observed a total
  different from the invariant (the H1/H2 inconsistent read, made
  measurable)?

The FIG6/SEC3 benchmarks correlate those observations with the checker's
verdicts: audits that observe broken invariants appear exactly in histories
that fail PL-2+/PL-3.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence

from ..core.history import History
from ..core.levels import IsolationLevel
from ..engine.programs import Compute, Program, Read, Write
from ..engine.simulator import ProgramOutcome

__all__ = [
    "accounts",
    "initial_balances",
    "transfer_program",
    "audit_program",
    "bank_programs",
    "conserved",
    "audit_violations",
]

DEFAULT_BALANCE = 100


def accounts(n: int) -> List[str]:
    return [f"acct{i}" for i in range(n)]


def initial_balances(n: int, balance: int = DEFAULT_BALANCE) -> Dict[str, int]:
    """``Database.load`` payload giving each account ``balance``."""
    return {a: balance for a in accounts(n)}


def transfer_program(
    name: str,
    src: str,
    dst: str,
    amount: int,
    level: Optional[IsolationLevel] = None,
) -> Program:
    """Move ``amount`` from ``src`` to ``dst`` (read both, write both)."""
    return Program(
        name,
        [
            Read(src, into="src"),
            Read(dst, into="dst"),
            Write(src, lambda regs: regs["src"] - amount),
            Write(dst, lambda regs: regs["dst"] + amount),
        ],
        level=level,
    )


def audit_program(
    name: str,
    n_accounts: int,
    level: Optional[IsolationLevel] = None,
) -> Program:
    """Read every account and store the observed total in ``regs['total']``."""
    steps: List[object] = [Read(a, into=a) for a in accounts(n_accounts)]
    steps.append(
        Compute(
            lambda regs: regs.__setitem__(
                "total", sum(regs[a] or 0 for a in accounts(n_accounts))
            )
        )
    )
    return Program(name, steps, level=level)


def bank_programs(
    *,
    n_accounts: int = 4,
    n_transfers: int = 4,
    n_audits: int = 2,
    amount: int = 10,
    seed: int = 0,
    level: Optional[IsolationLevel] = None,
) -> List[Program]:
    """A seeded mix of transfers between random distinct accounts and
    full-scan audits."""
    rng = random.Random(seed)
    names = accounts(n_accounts)
    programs: List[Program] = []
    for i in range(n_transfers):
        src, dst = rng.sample(names, 2)
        programs.append(
            transfer_program(f"transfer{i}", src, dst, amount, level=level)
        )
    for i in range(n_audits):
        programs.append(audit_program(f"audit{i}", n_accounts, level=level))
    return programs


def conserved(history: History, n_accounts: int, balance: int = DEFAULT_BALANCE) -> bool:
    """Whether the final committed state preserves the total balance."""
    state = history.committed_state()
    total = sum(state.get(a, 0) or 0 for a in accounts(n_accounts))
    return total == n_accounts * balance


def audit_violations(
    outcomes: Sequence[ProgramOutcome],
    n_accounts: int,
    balance: int = DEFAULT_BALANCE,
) -> List[ProgramOutcome]:
    """Committed audits whose observed total differs from the invariant —
    the measurable form of the paper's 'T2 observes x + y = 10 violated'."""
    expected = n_accounts * balance
    return [
        o
        for o in outcomes
        if o.committed
        and o.program.startswith("audit")
        and o.regs.get("total") != expected
    ]
