"""Open-loop arrival processes: determinism, thinning, rate shapes."""

import random

import pytest

from repro.workloads import (
    ArrivalProcess,
    BurstyArrivals,
    DiurnalArrivals,
    PoissonArrivals,
    ZipfianKeys,
)


class TestSchedule:
    def test_deterministic_per_seed(self):
        process = PoissonArrivals(rate=0.3)
        a = process.schedule(horizon=500, seed=42)
        b = process.schedule(horizon=500, seed=42)
        assert a == b

    def test_different_seeds_differ(self):
        process = PoissonArrivals(rate=0.3)
        assert process.schedule(horizon=500, seed=1) != process.schedule(
            horizon=500, seed=2
        )

    def test_sorted_and_in_horizon(self):
        ticks = PoissonArrivals(rate=0.5).schedule(horizon=200, seed=7)
        assert ticks == sorted(ticks)
        assert all(0 <= t < 200 for t in ticks)

    def test_mean_count_tracks_rate(self):
        # 0.2/tick over 5000 ticks ≈ 1000 arrivals; thinning keeps the mean.
        ticks = PoissonArrivals(rate=0.2).schedule(horizon=5000, seed=3)
        assert 800 <= len(ticks) <= 1200

    def test_zero_rate_and_zero_horizon(self):
        assert PoissonArrivals(rate=0.0).schedule(horizon=100, seed=1) == []
        assert PoissonArrivals(rate=1.0).schedule(horizon=0, seed=1) == []

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            PoissonArrivals(rate=-0.1)

    def test_base_class_is_abstract(self):
        with pytest.raises(NotImplementedError):
            ArrivalProcess().schedule(horizon=10, seed=0)


class TestBursty:
    def test_rate_shape(self):
        p = BurstyArrivals(rate=0.1, burst_factor=4.0, period=100, burst_length=10)
        assert p.rate_at(5) == pytest.approx(0.4)
        assert p.rate_at(50) == pytest.approx(0.1)
        assert p.rate_at(105) == pytest.approx(0.4)  # next period's burst
        assert p.max_rate == pytest.approx(0.4)

    def test_bursts_concentrate_arrivals(self):
        p = BurstyArrivals(rate=0.05, burst_factor=8.0, period=200, burst_length=20)
        ticks = p.schedule(horizon=4000, seed=9)
        in_burst = sum(1 for t in ticks if (t % 200) < 20)
        # Bursts cover 10% of the timeline; per-tick arrival density inside
        # a burst should sit near 8x the quiet density, far above 2x.
        burst_density = in_burst / (20 * 20)
        quiet_density = (len(ticks) - in_burst) / (180 * 20)
        assert burst_density > 2 * quiet_density

    def test_validation(self):
        with pytest.raises(ValueError):
            BurstyArrivals(rate=0.1, burst_factor=0.5)
        with pytest.raises(ValueError):
            BurstyArrivals(rate=0.1, period=10, burst_length=11)


class TestDiurnal:
    def test_bounds_and_period(self):
        p = DiurnalArrivals(trough=0.1, peak=0.5, day=1000)
        rates = [p.rate_at(t) for t in range(1000)]
        assert min(rates) >= 0.1 - 1e-9
        assert max(rates) <= 0.5 + 1e-9
        assert p.rate_at(0) == pytest.approx(p.rate_at(1000))
        assert p.max_rate == pytest.approx(0.5)

    def test_peak_quarter_day(self):
        p = DiurnalArrivals(trough=0.0, peak=1.0, day=1000)
        assert p.rate_at(250) == pytest.approx(1.0)
        assert p.rate_at(750) == pytest.approx(0.0, abs=1e-9)

    def test_validation(self):
        with pytest.raises(ValueError):
            DiurnalArrivals(trough=0.5, peak=0.1)
        with pytest.raises(ValueError):
            DiurnalArrivals(trough=0.1, peak=0.5, day=0)

    def test_mean_rate_between_bounds(self):
        p = DiurnalArrivals(trough=0.2, peak=0.6, day=500)
        assert 0.2 < p.mean_rate(500) < 0.6


class TestZipfianKeys:
    def test_skew_orders_keys(self):
        hot = ZipfianKeys(20, theta=0.99)
        rng = random.Random(5)
        counts = [0] * 20
        for _ in range(5000):
            counts[hot.sample(rng)] += 1
        assert counts[0] > counts[5] > counts[19]

    def test_theta_zero_is_roughly_uniform(self):
        hot = ZipfianKeys(4, theta=0.0)
        rng = random.Random(5)
        counts = [0] * 4
        for _ in range(8000):
            counts[hot.sample(rng)] += 1
        assert max(counts) < 1.2 * min(counts)

    def test_sample_distinct(self):
        hot = ZipfianKeys(6, theta=0.9)
        rng = random.Random(1)
        picked = hot.sample_distinct(rng, 4)
        assert len(picked) == len(set(picked)) == 4
        assert all(0 <= k < 6 for k in picked)
        # Asking for more than the key space caps at the key space.
        assert sorted(hot.sample_distinct(rng, 99)) == list(range(6))

    def test_deterministic_per_rng_seed(self):
        hot = ZipfianKeys(8, theta=0.8)
        rng_a, rng_b = random.Random(3), random.Random(3)
        a = [hot.sample(rng_a) for _ in range(10)]
        b = [hot.sample(rng_b) for _ in range(10)]
        assert a == b

    def test_validation(self):
        with pytest.raises(ValueError):
            ZipfianKeys(0)
        with pytest.raises(ValueError):
            ZipfianKeys(4, theta=-1.0)
