"""Predicates and version sets (paper Section 4.3).

A predicate names a Boolean condition together with the relations it ranges
over.  When a transaction performs a predicate-based read, the system selects
one version of *every* tuple in those relations — the *version set*
``Vset(P)`` (Definition 1) — and evaluates the condition on each selected
version.  Unborn and dead versions never match.

Two concrete predicate families are provided:

* :class:`MembershipPredicate` — the predicate is *defined* by the set of
  versions that satisfy it.  This is how parsed paper histories express
  matching: the history text declares which versions are in the department,
  exceed the salary bound, etc.  It is the fully general form: any predicate
  over a finite history can be expressed this way.
* :class:`FieldPredicate` — evaluates a comparison against a field of the
  row value carried by the version's write event.  The engine's SQL-like
  operations (``SELECT ... WHERE dept = 'Sales'``) use these.

Matching is always consulted through
:meth:`Predicate.matches`, which receives both the version identity and the
value written (``None`` for versions whose write carried no value), and which
is *never* called for unborn or dead versions — the framework short-circuits
those to "no match" per Section 4.3.1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, FrozenSet, Mapping, Tuple

from ..exceptions import PredicateError
from .objects import DEFAULT_RELATION, Version

__all__ = [
    "Predicate",
    "MembershipPredicate",
    "FieldPredicate",
    "FunctionPredicate",
    "VersionSet",
]


class Predicate:
    """Abstract predicate: a named Boolean condition over relations.

    Subclasses implement :meth:`matches`.  Equality and hashing are by
    ``(name, relations)``; histories treat two predicate reads with equal
    predicates as reads of the same predicate.
    """

    name: str
    relations: FrozenSet[str]

    def __init__(self, name: str, relations: FrozenSet[str] | None = None):
        if not name or any(ch in name for ch in ":()[]{}"):
            raise PredicateError(
                f"predicate name {name!r} must be non-empty and free of "
                "':', parentheses, brackets and braces (notation delimiters)"
            )
        self.name = name
        self.relations = frozenset(relations) if relations else frozenset({DEFAULT_RELATION})

    def matches(self, version: Version, value: Any) -> bool:
        """Whether ``version`` (with write value ``value``) satisfies the
        condition.  Only called for visible versions."""
        raise NotImplementedError

    def covers(self, obj: str) -> bool:
        """Whether the predicate ranges over ``obj``'s relation."""
        from .objects import relation_of

        return relation_of(obj) in self.relations

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Predicate)
            and self.name == other.name
            and self.relations == other.relations
        )

    def __hash__(self) -> int:
        return hash((self.name, self.relations))

    def __str__(self) -> str:
        return self.name

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}({self.name!r})"


class MembershipPredicate(Predicate):
    """Predicate defined extensionally by its set of matching versions.

    This is the parser's representation: the history text marks matching
    versions with ``*`` inside a version set (``r1(P: x0*, y0)``) and/or in
    a declaration block (``[P matches: x0 y0]``); the union of those marks is
    the ``matching`` set here.  Any version not in the set does not satisfy
    the predicate.
    """

    def __init__(
        self,
        name: str,
        matching: FrozenSet[Version] | None = None,
        relations: FrozenSet[str] | None = None,
    ):
        super().__init__(name, relations)
        self.matching: FrozenSet[Version] = frozenset(matching or ())

    def matches(self, version: Version, value: Any) -> bool:
        return version in self.matching

    def with_matching(self, extra: FrozenSet[Version]) -> "MembershipPredicate":
        """A copy whose matching set also includes ``extra``."""
        return MembershipPredicate(self.name, self.matching | frozenset(extra), self.relations)


_OPS: Mapping[str, Callable[[Any, Any], bool]] = {
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
    "in": lambda a, b: a in b,
}


class FieldPredicate(Predicate):
    """``row[field] <op> operand`` over rows of one relation.

    Row values are mappings (the engine stores each tuple as a dict).  A
    version whose value is not a mapping, or lacks the field, does not match;
    this mirrors SQL's treatment of NULLs in comparisons.
    """

    def __init__(self, relation: str, fieldname: str, op: str, operand: Any, name: str | None = None):
        if op not in _OPS:
            raise PredicateError(f"unsupported predicate operator {op!r}")
        self.fieldname = fieldname
        self.op = op
        self.operand = operand
        label = name or f"{relation}.{fieldname}{op}{operand}"
        super().__init__(label, frozenset({relation}))

    def matches(self, version: Version, value: Any) -> bool:
        if not isinstance(value, Mapping) or self.fieldname not in value:
            return False
        try:
            return _OPS[self.op](value[self.fieldname], self.operand)
        except TypeError:
            return False


class FunctionPredicate(Predicate):
    """Predicate evaluated by an arbitrary callable ``fn(version, value)``.

    Useful for engine workloads with conditions that are awkward as a single
    field comparison (conjunctions, arithmetic such as the paper's
    ``COMM > 0.25 * SAL``).  The name is the identity, so give semantically
    distinct predicates distinct names.
    """

    def __init__(
        self,
        name: str,
        fn: Callable[[Version, Any], bool],
        relations: FrozenSet[str] | None = None,
    ):
        super().__init__(name, relations)
        self._fn = fn

    def matches(self, version: Version, value: Any) -> bool:
        return bool(self._fn(version, value))


@dataclass(frozen=True)
class VersionSet:
    """The explicit part of a ``Vset(P)`` (Definition 1).

    Maps each object to the version the system selected for it when
    evaluating the predicate.  Objects of the predicate's relations that do
    not appear here were implicitly selected at their *unborn* version —
    the paper's convention of "only showing visible versions".
    :meth:`repro.core.history.History.vset_version` performs that completion.
    """

    selected: Mapping[str, Version] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for obj, version in self.selected.items():
            if version.obj != obj:
                raise PredicateError(
                    f"version set maps object {obj!r} to a version of {version.obj!r}"
                )
        # Freeze into a plain dict so the dataclass is safely hashable by id
        # of contents; we expose item access and iteration only.
        object.__setattr__(self, "selected", dict(self.selected))

    @classmethod
    def of(cls, *versions: Version) -> "VersionSet":
        """Build from explicit versions (one per object)."""
        sel: dict[str, Version] = {}
        for v in versions:
            if v.obj in sel:
                raise PredicateError(f"duplicate object {v.obj!r} in version set")
            sel[v.obj] = v
        return cls(sel)

    def get(self, obj: str) -> Version | None:
        return self.selected.get(obj)

    def objects(self) -> Tuple[str, ...]:
        return tuple(self.selected)

    def versions(self) -> Tuple[Version, ...]:
        return tuple(self.selected.values())

    def __contains__(self, version: Version) -> bool:
        return self.selected.get(version.obj) == version

    def __len__(self) -> int:
        return len(self.selected)

    def __str__(self) -> str:
        return ", ".join(str(v) for v in self.selected.values())

    def __hash__(self) -> int:
        return hash(frozenset(self.selected.items()))
