"""Deterministic client/server service layer over the engine.

A single-process, seeded simulation of a database service: a
:class:`Server` wraps a :class:`~repro.engine.database.Database` behind a
:class:`SimulatedNetwork` that drops, delays, duplicates and partitions
messages; :class:`Client` sessions retry with idempotency tokens and
exponential backoff; the server can :meth:`~Server.crash` and
:meth:`~Server.restart`, recovering committed state from the recorder log.
:func:`run_stress` drives seeded multi-client workloads through the whole
stack and live-certifies every commit against its declared isolation level
with the online :class:`~repro.core.incremental.IncrementalAnalysis`.

Everything is deterministic: same seeds and configs, same history and same
client journals, byte for byte.
"""

from .capacity import (
    CapacityResult,
    CapacityRung,
    build_capacity_report,
    find_knee,
    run_capacity,
)
from .client import Client, PendingCall
from .cluster import Cluster, ClusterClient, ShardServer, connect_cluster
from .config import (
    AdmissionConfig,
    ClusterConfig,
    MapChange,
    NetworkConfig,
    RetryPolicy,
    SchedulerConfig,
    SessionGuarantees,
    StressConfig,
)
from .coordinator import Coordinator
from .errors import (
    RequestTimeout,
    ServiceAborted,
    ServiceError,
    ServiceUnavailable,
)
from .network import SimulatedNetwork
from .replication import ReplicaServer, SessionVector
from .server import Server
from .shardmap import ShardMap
from .stress import StressResult, run_stress

__all__ = [
    "AdmissionConfig",
    "CapacityResult",
    "CapacityRung",
    "Client",
    "Cluster",
    "ClusterClient",
    "ClusterConfig",
    "Coordinator",
    "MapChange",
    "NetworkConfig",
    "PendingCall",
    "ReplicaServer",
    "RequestTimeout",
    "RetryPolicy",
    "SchedulerConfig",
    "Server",
    "ServiceAborted",
    "ServiceError",
    "ServiceUnavailable",
    "SessionGuarantees",
    "SessionVector",
    "ShardMap",
    "ShardServer",
    "SimulatedNetwork",
    "StressConfig",
    "StressResult",
    "build_capacity_report",
    "connect_cluster",
    "find_knee",
    "run_capacity",
    "run_stress",
]
