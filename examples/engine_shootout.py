#!/usr/bin/env python3
"""Engine shootout: the Section 3 argument as a table.

Every scheduler runs the same seeded contentious workloads.  For each we
report (a) the strongest PL level its histories always provide, (b) whether
the *preventative* P0–P3 definitions would accept those same histories, and
(c) throughput proxies (commits, aborts, deadlocks).

The table is the paper's case for implementation-independence: OCC and the
multi-version schemes deliver their promised levels while flunking the
locking-shaped P-phenomena on almost every run.

Run:  python examples/engine_shootout.py
"""

import repro
from repro.baseline import PreventativeAnalysis, PreventativePhenomenon
from repro.core.levels import ANSI_CHAIN
from repro.engine import (
    Database,
    LockingScheduler,
    OptimisticScheduler,
    ReadCommittedMVScheduler,
    Simulator,
    SnapshotIsolationScheduler,
)
from repro.workloads import WorkloadConfig, random_programs

N_SEEDS = 20

SCHEDULERS = [
    ("2PL degree-0", lambda: LockingScheduler("degree-0")),
    ("2PL read-uncommitted", lambda: LockingScheduler("read-uncommitted")),
    ("2PL read-committed", lambda: LockingScheduler("read-committed")),
    ("2PL repeatable-read", lambda: LockingScheduler("repeatable-read")),
    ("2PL serializable", lambda: LockingScheduler("serializable")),
    ("optimistic (OCC)", OptimisticScheduler),
    ("snapshot isolation", SnapshotIsolationScheduler),
    ("MV read-committed", ReadCommittedMVScheduler),
]


def guaranteed_level(histories):
    """The strongest ANSI level provided by *every* history."""
    best = None
    for level in ANSI_CHAIN:
        if all(repro.satisfies(h, level).ok for h in histories):
            best = level
    return best


def main() -> None:
    cfg = WorkloadConfig(
        n_programs=5, steps_per_program=3, n_keys=4,
        hot_fraction=0.7, write_fraction=0.6,
    )
    header = (
        f"{'scheduler':22} {'guaranteed':>11} {'P-accepted':>10} "
        f"{'commits':>8} {'aborts':>7} {'deadlocks':>9}"
    )
    print(f"contentious workload, {N_SEEDS} seeds each\n")
    print(header)
    print("-" * len(header))
    for name, factory in SCHEDULERS:
        histories, commits, aborts, deadlocks = [], 0, 0, 0
        p_accepted = 0
        for seed in range(N_SEEDS):
            db = Database(factory())
            db.load(cfg.initial_state())
            result = Simulator(db, random_programs(cfg, seed=seed), seed=seed).run()
            histories.append(result.history)
            commits += result.committed_count
            aborts += result.abort_count
            deadlocks += result.deadlocks
            analysis = PreventativeAnalysis(result.history)
            p_accepted += not any(
                analysis.exhibits(p) for p in PreventativePhenomenon
            )
        level = guaranteed_level(histories)
        print(
            f"{name:22} {str(level):>11} {p_accepted:>7}/{N_SEEDS:<2} "
            f"{commits:>8} {aborts:>7} {deadlocks:>9}"
        )

    print(
        "\n'guaranteed' = strongest PL level every emitted history provides."
        "\n'P-accepted' = runs with no P0-P3 occurrence (the preventative"
        "\n               definitions would admit only these)."
    )


if __name__ == "__main__":
    main()
