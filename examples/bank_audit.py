#!/usr/bin/env python3
"""Bank audit: the paper's x + y = 10 invariant, at scale, per scheduler.

Concurrent transfers preserve a fixed total; audit transactions read every
account and check the sum.  This script runs the workload under five
concurrency-control schemes and correlates two views of the outcome:

* the *application's* view — did any committed audit observe a broken
  invariant?  was money conserved?
* the *checker's* view — what PL level does the emitted history provide?

The punchline is the paper's: audits only observe inconsistencies in
histories the generalized definitions already classify below PL-3/PL-2+.

Run:  python examples/bank_audit.py
"""

import repro
from repro.engine import (
    Database,
    LockingScheduler,
    OptimisticScheduler,
    ReadCommittedMVScheduler,
    Simulator,
    SnapshotIsolationScheduler,
)
from repro.workloads import (
    audit_violations,
    bank_programs,
    conserved,
    initial_balances,
)

N_ACCOUNTS = 4
N_SEEDS = 25

SCHEDULERS = [
    ("2PL serializable", lambda: LockingScheduler("serializable")),
    ("2PL read-committed", lambda: LockingScheduler("read-committed")),
    ("optimistic (OCC)", OptimisticScheduler),
    ("snapshot isolation", SnapshotIsolationScheduler),
    ("MV read-committed", ReadCommittedMVScheduler),
]


def main() -> None:
    print(f"{N_SEEDS} seeded runs each; {N_ACCOUNTS} accounts, transfers + audits\n")
    header = (
        f"{'scheduler':22} {'bad audits':>10} {'lost money':>10} "
        f"{'worst level':>12}"
    )
    print(header)
    print("-" * len(header))
    for name, factory in SCHEDULERS:
        bad_audits = 0
        lost_money = 0
        worst = None
        for seed in range(N_SEEDS):
            db = Database(factory())
            db.load(initial_balances(N_ACCOUNTS))
            result = Simulator(
                db, bank_programs(n_accounts=N_ACCOUNTS, seed=seed), seed=seed
            ).run()
            bad_audits += len(audit_violations(result.outcomes, N_ACCOUNTS))
            lost_money += not conserved(result.history, N_ACCOUNTS)
            level = repro.classify(result.history)
            if worst is None or (level is not None and worst is not None
                                 and worst.implies(level) and worst is not level):
                worst = level
            if level is None:
                worst = None
        print(f"{name:22} {bad_audits:>10} {lost_money:>10} {str(worst):>12}")

    print(
        "\nSerializable locking, OCC and SI never show a bad audit; "
        "read-committed schemes do, and their histories classify below "
        "PL-3 — exactly the paper's trade-off."
    )


if __name__ == "__main__":
    main()
