"""Hypothesis strategies for property-based testing against the library.

Downstream users writing their own property tests (e.g. for a new scheduler
or an alternative checker) can draw well-formed histories directly::

    from hypothesis import given
    from repro.workloads.strategies import histories

    @given(histories())
    def test_my_invariant(history):
        ...

Strategies wrap the deterministic :func:`~repro.workloads.generator.
synthetic_history` generator, so every drawn history is well-formed by
construction (and shrinkable through its integer parameters).
"""

from __future__ import annotations

from hypothesis import strategies as st

from .generator import synthetic_history

__all__ = ["histories", "serializable_histories", "conflicted_histories"]


def histories(
    *,
    max_txns: int = 25,
    max_objects: int = 8,
    max_ops: int = 6,
    stale_reads: bool = True,
):
    """Arbitrary well-formed histories.

    With ``stale_reads`` (default) the generator may serve reads from older
    committed versions, producing genuinely anomalous multi-version
    histories; without it reads observe the latest committed version and the
    results always provide PL-2.
    """

    stale = (
        st.floats(min_value=0.0, max_value=1.0)
        if stale_reads
        else st.just(0.0)
    )
    return st.builds(
        synthetic_history,
        n_txns=st.integers(min_value=1, max_value=max_txns),
        n_objects=st.integers(min_value=1, max_value=max_objects),
        ops_per_txn=st.integers(min_value=1, max_value=max_ops),
        write_fraction=st.floats(min_value=0.0, max_value=1.0),
        abort_fraction=st.floats(min_value=0.0, max_value=0.5),
        stale_read_fraction=stale,
        seed=st.integers(min_value=0, max_value=100_000),
    )


def serializable_histories(**kw):
    """Histories whose reads always observe the latest committed version —
    commit-order serializable by construction (and PL-2 guaranteed)."""
    return histories(stale_reads=False, **kw)


def conflicted_histories(**kw):
    """Histories biased toward anomalies: heavy staleness and writes over a
    small keyspace."""
    return st.builds(
        synthetic_history,
        n_txns=st.integers(min_value=4, max_value=kw.get("max_txns", 25)),
        n_objects=st.integers(min_value=1, max_value=4),
        ops_per_txn=st.integers(min_value=2, max_value=6),
        write_fraction=st.floats(min_value=0.4, max_value=0.9),
        abort_fraction=st.floats(min_value=0.0, max_value=0.2),
        stale_read_fraction=st.floats(min_value=0.5, max_value=1.0),
        seed=st.integers(min_value=0, max_value=100_000),
    )
