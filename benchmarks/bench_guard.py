"""Regression guard: checker timings versus the committed baseline.

``pytest benchmarks -m benchguard`` re-measures the guard workload registry
(:data:`compare_bench.GUARD_BENCHMARKS`) in-process and fails if any is more
than 25% slower than ``benchmarks/results/baseline.json`` after cancelling
hardware speed through the calibration spin loop.  Refresh the baseline
after an intentional performance change::

    pytest benchmarks/bench_scaling_checker.py --benchmark-json=/tmp/b.json
    python benchmarks/compare_bench.py distill /tmp/b.json
"""

from __future__ import annotations

import json

import pytest

from compare_bench import (
    BASELINE_PATH,
    GUARD_BENCHMARKS,
    compare,
    measure_guard,
    split_guard_names,
)


@pytest.mark.benchguard
def test_no_regression_against_baseline():
    if not BASELINE_PATH.exists():
        pytest.skip(f"no committed baseline at {BASELINE_PATH}")
    try:
        baseline = json.loads(BASELINE_PATH.read_text())
    except ValueError as exc:
        pytest.skip(f"unreadable baseline at {BASELINE_PATH}: {exc}")
    present, missing = split_guard_names(baseline, list(GUARD_BENCHMARKS))
    if not present:
        pytest.skip(
            f"baseline at {BASELINE_PATH} records none of the registered "
            f"guard workloads ({', '.join(missing)}); re-distill it"
        )
    current = measure_guard(present)
    regressions = compare(baseline, current)
    assert not regressions, "\n".join(regressions)
