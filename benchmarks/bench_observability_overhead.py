"""Observability overhead guard: disabled instrumentation must be free.

Every hook added for the observability layer — metrics counters in the
recorder/lock manager/store, tracer spans in the simulator and checker —
is guarded by an ``is not None`` check and defaults to off.  These tests
pin that claim two ways:

* the **benchguard** test re-measures the conflicted scaling workloads
  (instrumentation disabled, as always for plain ``repro.check``) against
  the committed pre-instrumentation ``baseline.json`` — any hook that
  leaked onto the hot path shows up as a >25% regression;
* the **engine** test runs the same simulated workload with and without a
  registry+tracer attached and bounds the *enabled* overhead too, so the
  instrumented path stays usable (a loose bound — this is a smoke ceiling,
  not a performance promise).
"""

from __future__ import annotations

import json
import time

import pytest

from compare_bench import BASELINE_PATH, compare, measure_guard

_CONFLICTED = [
    "test_scaling_conflicted_histories[1000]",
    "test_scaling_conflicted_histories[4000]",
]


@pytest.mark.benchguard
def test_disabled_instrumentation_within_noise_of_baseline():
    """The conflicted checker workloads, run exactly as the committed
    pre-instrumentation baseline ran them (no registry, no tracer), must
    stay within the guard tolerance — i.e. the default-off hooks cost
    nothing measurable."""
    if not BASELINE_PATH.exists():
        pytest.skip(f"no committed baseline at {BASELINE_PATH}")
    baseline = json.loads(BASELINE_PATH.read_text())
    wanted = [n for n in _CONFLICTED if n in baseline["benchmarks"]]
    if not wanted:
        pytest.skip("baseline has no conflicted scaling entries")
    current = measure_guard(wanted)
    regressions = compare(baseline, current)
    assert not regressions, "\n".join(regressions)


def _run_workload(*, instrumented: bool) -> float:
    from repro.engine.database import Database
    from repro.engine.locking import LockingScheduler
    from repro.engine.programs import Increment, Program, Read
    from repro.engine.simulator import Simulator
    from repro.observability import MetricsRegistry, Tracer

    best = float("inf")
    for round_ in range(3):
        db = Database(LockingScheduler("serializable"))
        db.load({f"x{i}": 0 for i in range(8)})
        programs = [
            Program(
                f"p{i}",
                [Read(f"x{i % 8}", into="v"), Increment(f"x{(i + 1) % 8}")],
            )
            for i in range(24)
        ]
        kwargs = {}
        if instrumented:
            kwargs = {"metrics": MetricsRegistry(), "tracer": Tracer()}
        sim = Simulator(db, programs, seed=round_, **kwargs)
        start = time.perf_counter()
        sim.run()
        best = min(best, time.perf_counter() - start)
    return best


def test_enabled_instrumentation_overhead_bounded():
    plain = _run_workload(instrumented=False)
    instrumented = _run_workload(instrumented=True)
    # Generous ceiling: full metrics + tracing may cost real work (every
    # event is counted and spanned) but must stay the same order of
    # magnitude as the uninstrumented run.
    assert instrumented < max(plain * 5, plain + 0.05), (
        f"instrumented run {instrumented * 1000:.1f} ms vs plain "
        f"{plain * 1000:.1f} ms"
    )
