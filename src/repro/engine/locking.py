"""Single-version strict locking scheduler, parameterized by Figure 1.

Each transaction runs under a :class:`LockProfile` naming the duration of its
item write locks, item read locks, and predicate (phantom) read locks.  The
five rows of Figure 1 are provided as the :data:`PROFILES` table:

=====================  ===========  ==========  ===========
profile                item write   item read   predicate
=====================  ===========  ==========  ===========
degree-0               short        none        none
read-uncommitted       long         none        none
read-committed         long         short       short
repeatable-read        long         long        short
serializable           long         long        long
=====================  ===========  ==========  ===========

The scheduler is *single-version in place*: each object holds a stack of
entries; writes push, aborts pop the aborting transaction's entries, reads
observe the top.  Dirty reads/writes therefore genuinely happen at the weak
profiles, and the emitted Adya histories show them.  Mixed-level executions
simply give different transactions different profiles (Section 5.5's
"standard combination of short and long read/write locks").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from ..core.levels import IsolationLevel
from ..core.objects import Version
from ..core.predicates import Predicate, VersionSet
from .locks import LockDuration, LockManager, LockMode
from .scheduler import PredicateResult, Scheduler
from .transaction import Transaction, TxnState

__all__ = ["LockProfile", "PROFILES", "profile_for_level", "LockingScheduler"]


@dataclass(frozen=True)
class LockProfile:
    """Lock durations for one transaction (one row of Figure 1)."""

    name: str
    item_write: LockDuration
    item_read: LockDuration
    predicate_read: LockDuration

    def __str__(self) -> str:
        return self.name


PROFILES: Dict[str, LockProfile] = {
    "degree-0": LockProfile(
        "degree-0", LockDuration.SHORT, LockDuration.NONE, LockDuration.NONE
    ),
    "read-uncommitted": LockProfile(
        "read-uncommitted", LockDuration.LONG, LockDuration.NONE, LockDuration.NONE
    ),
    "read-committed": LockProfile(
        "read-committed", LockDuration.LONG, LockDuration.SHORT, LockDuration.SHORT
    ),
    "repeatable-read": LockProfile(
        "repeatable-read", LockDuration.LONG, LockDuration.LONG, LockDuration.SHORT
    ),
    "serializable": LockProfile(
        "serializable", LockDuration.LONG, LockDuration.LONG, LockDuration.LONG
    ),
}

_LEVEL_PROFILES: Dict[IsolationLevel, str] = {
    IsolationLevel.PL_1: "read-uncommitted",
    IsolationLevel.PL_2: "read-committed",
    IsolationLevel.PL_2_99: "repeatable-read",
    IsolationLevel.PL_3: "serializable",
}


def profile_for_level(level: IsolationLevel) -> LockProfile:
    """Figure 1's locking implementation of an ANSI-chain level."""
    try:
        return PROFILES[_LEVEL_PROFILES[level]]
    except KeyError:
        raise KeyError(f"no Figure 1 lock profile for {level}") from None


@dataclass
class _CellEntry:
    """One in-place version of an object (possibly uncommitted)."""

    version: Version
    value: Any
    dead: bool


class LockingScheduler(Scheduler):
    """Strict locking over an in-place single-version store."""

    def __init__(
        self,
        profile: LockProfile | str = "serializable",
        *,
        deadlock: str = "detect",
    ):
        super().__init__()
        if isinstance(profile, str):
            profile = PROFILES[profile]
        if deadlock not in ("detect", "wound-wait"):
            raise ValueError("deadlock policy must be 'detect' or 'wound-wait'")
        self.default_profile = profile
        self.deadlock_policy = deadlock
        self.locks = LockManager()
        self._cells: Dict[str, List[_CellEntry]] = {}
        self._txns: Dict[int, Transaction] = {}
        self.name = f"locking/{profile.name}"

    def on_begin(self, txn: Transaction) -> None:
        self._txns[txn.tid] = txn

    # -- deadlock prevention (wound-wait) --------------------------------

    def _wound(self, holder_tid: int, requester_tid: int) -> None:
        holder = self._txns.get(holder_tid)
        if holder is not None and holder.state is TxnState.ACTIVE:
            holder.abort_reason = f"wounded by older T{requester_tid}"
            self._abort_metric("wounded")
            if self.tracer is not None:
                self.tracer.event(
                    "wound",
                    victim=holder_tid,
                    requester=requester_tid,
                    scheduler=self.name,
                )
            self.abort(holder)

    def _acquire(self, txn: Transaction, attempt) -> None:
        """Run a lock acquisition under the configured deadlock policy.

        ``detect`` re-raises blocks (the simulator finds waits-for cycles);
        ``wound-wait`` aborts younger holders on the spot — the requester
        only ever waits for *older* transactions, so waits-for edges all
        point at smaller tids and no cycle can form.
        """
        from ..exceptions import WouldBlock

        while True:
            try:
                attempt()
                return
            except WouldBlock as block:
                if self.deadlock_policy != "wound-wait":
                    raise
                younger = {t for t in block.holders if t > txn.tid}
                for tid in younger:
                    self._wound(tid, txn.tid)
                older = block.holders - younger
                if older:
                    raise WouldBlock(txn.tid, block.resource, older) from None
                # every blocker was wounded; retry the acquisition

    # ------------------------------------------------------------------

    def profile_of(self, txn: Transaction) -> LockProfile:
        """Mixed systems: a transaction's declared level selects its row of
        Figure 1; undeclared transactions use the scheduler default."""
        if txn.level is None:
            return self.default_profile
        return profile_for_level(
            txn.level if isinstance(txn.level, IsolationLevel)
            else IsolationLevel.from_string(str(txn.level))
        )

    def _top(self, obj: str) -> Optional[_CellEntry]:
        stack = self._cells.get(obj)
        return stack[-1] if stack else None

    # ------------------------------------------------------------------
    # operations
    # ------------------------------------------------------------------

    def read(
        self,
        txn: Transaction,
        obj: str,
        *,
        cursor: bool = False,
        for_update: bool = False,
    ) -> Any:
        txn.require_active()
        own = txn.buffer.get(obj)
        if own is not None:
            # Read-your-own-writes (model constraint E4); a read after the
            # transaction's own delete observes nothing (E7).
            if own.dead:
                return None
            self.recorder.read(txn.tid, own.version, own.value, cursor=cursor)
            txn.read_set.add(obj)
            return own.value
        profile = self.profile_of(txn)
        if for_update:
            # SELECT ... FOR UPDATE: take the write lock up front so the
            # following write needs no upgrade (the classic upgrade-deadlock
            # avoidance).  Held long, like any write lock.
            self._acquire(
                txn, lambda: self.locks.acquire_item(txn.tid, obj, LockMode.WRITE)
            )
        elif profile.item_read is not LockDuration.NONE:
            self._acquire(
                txn, lambda: self.locks.acquire_item(txn.tid, obj, LockMode.READ)
            )
        entry = self._top(obj)
        if entry is None or entry.dead:
            value = None
        else:
            self.recorder.read(txn.tid, entry.version, entry.value, cursor=cursor)
            txn.read_set.add(obj)
            value = entry.value
        if not for_update and profile.item_read is LockDuration.SHORT:
            self.locks.downgrade_or_release_read(txn.tid, obj)
        return value

    def write(
        self, txn: Transaction, obj: str, value: Any, *, dead: bool = False
    ) -> None:
        txn.require_active()
        profile = self.profile_of(txn)
        self._acquire(
            txn, lambda: self.locks.acquire_item(txn.tid, obj, LockMode.WRITE)
        )
        self.store.register(obj)
        version = txn.next_version(obj)
        entry = _CellEntry(version, None if dead else value, dead)
        self._cells.setdefault(obj, []).append(entry)
        txn.write_set.add(obj)
        txn.final_write_index[obj] = len(self.recorder.events)
        self.recorder.write(txn.tid, version, entry.value, dead=dead)
        txn.buffer[obj] = _make_buffered(version, entry.value, dead)
        if profile.item_write is LockDuration.SHORT:
            self.locks.release_item(txn.tid, obj)

    def predicate_read(
        self, txn: Transaction, predicate: Predicate
    ) -> PredicateResult:
        txn.require_active()
        profile = self.profile_of(txn)
        acquired = []
        if profile.predicate_read is not LockDuration.NONE:
            for relation in sorted(predicate.relations):
                self._acquire(
                    txn,
                    lambda rel=relation: self.locks.acquire_relation(txn.tid, rel),
                )
                acquired.append(relation)
        selected: Dict[str, Version] = {}
        matched: List[Tuple[str, Any]] = []
        for relation in sorted(predicate.relations):
            for obj in self.store.objects_in(relation):
                own = txn.buffer.get(obj)
                if own is not None:
                    # See your own inserts/updates/deletes (E4 analogue).
                    selected[obj] = own.version
                    if not own.dead and predicate.matches(own.version, own.value):
                        matched.append((obj, own.value))
                    continue
                entry = self._top(obj)
                if entry is None:
                    continue  # implicitly the unborn version
                selected[obj] = entry.version
                if not entry.dead and predicate.matches(entry.version, entry.value):
                    matched.append((obj, entry.value))
        self.recorder.predicate_read(txn.tid, predicate, VersionSet(selected))
        txn.predicates.append(predicate)
        if profile.predicate_read is LockDuration.SHORT:
            for relation in acquired:
                self.locks.release_relation(txn.tid, relation)
        return PredicateResult(tuple(sorted(matched)))

    def commit(self, txn: Transaction) -> None:
        txn.require_active()
        finals = txn.finals()
        self.store.install(txn.final_values())
        self.recorder.commit(txn.tid, finals, positions=dict(txn.final_write_index))
        self.locks.release_all(txn.tid)
        txn.state = TxnState.COMMITTED

    def restore(self, state) -> None:
        """Crash-recovery redo: rebuild both the predicate-universe store
        and the in-place cells (reads observe cell tops, so the recovered
        committed values must live there)."""
        super().restore(state)
        for obj, (version, value, dead) in sorted(state.items()):
            self._cells[obj] = [_CellEntry(version, value, dead)]

    def redo(self, writes) -> None:
        """Prepared-transaction redo: the recovered committed values must
        also become the in-place cell tops, as :meth:`restore` does."""
        writes = list(writes)
        super().redo(writes)
        for version, value, dead in writes:
            self._cells[version.obj] = [_CellEntry(version, value, dead)]

    def abort(self, txn: Transaction) -> None:
        if txn.state is not TxnState.ACTIVE:
            return
        # Undo: remove this transaction's in-place entries wherever they are.
        for obj in txn.write_set:
            stack = self._cells.get(obj, [])
            stack[:] = [e for e in stack if e.version.tid != txn.tid]
        self.recorder.abort(txn.tid)
        self.locks.release_all(txn.tid)
        txn.state = TxnState.ABORTED


def _make_buffered(version: Version, value: Any, dead: bool):
    from .transaction import BufferedWrite

    return BufferedWrite(version, value, dead, -1)
