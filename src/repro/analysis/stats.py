"""Descriptive statistics over histories.

``history_stats`` summarises one history — event mix, transaction outcomes,
conflict-edge counts by kind, graph density — for experiment tables and
report footers.  Nothing here affects verdicts; it is the observability
layer the benchmarks and examples print from.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..core.conflicts import all_dependencies
from ..core.events import PredicateRead, Read, Write
from ..core.history import History

__all__ = ["HistoryStats", "history_stats"]


@dataclass(frozen=True)
class HistoryStats:
    """Shape summary of one history."""

    events: int
    transactions: int
    committed: int
    aborted: int
    reads: int
    writes: int
    deletes: int
    predicate_reads: int
    objects: int
    #: conflict edges by kind tag: "ww", "wr", "pwr", "rw", "prw"
    edges: Dict[str, int]

    @property
    def total_edges(self) -> int:
        return sum(self.edges.values())

    @property
    def commit_ratio(self) -> float:
        return self.committed / self.transactions if self.transactions else 0.0

    def describe(self) -> str:
        edge_text = ", ".join(f"{k}={v}" for k, v in sorted(self.edges.items()))
        return (
            f"{self.events} events, {self.transactions} txns "
            f"({self.committed} committed / {self.aborted} aborted), "
            f"{self.reads}r/{self.writes}w/{self.deletes}d/"
            f"{self.predicate_reads}p over {self.objects} objects; "
            f"edges: {edge_text or 'none'}"
        )


def history_stats(history: History) -> HistoryStats:
    """Compute the summary (one pass over events + conflict extraction)."""
    reads = writes = deletes = preads = 0
    for ev in history.events:
        if isinstance(ev, Read):
            reads += 1
        elif isinstance(ev, Write):
            if ev.dead:
                deletes += 1
            else:
                writes += 1
        elif isinstance(ev, PredicateRead):
            preads += 1
    edges: Dict[str, int] = {}
    for edge in all_dependencies(history):
        tag = ("p" if edge.via_predicate else "") + edge.kind.value
        edges[tag] = edges.get(tag, 0) + 1
    return HistoryStats(
        events=len(history.events),
        transactions=len(history.tids),
        committed=len(history.committed),
        aborted=len(history.aborted),
        reads=reads,
        writes=writes,
        deletes=deletes,
        predicate_reads=preads,
        objects=len(history.version_order),
        edges=edges,
    )
