"""Smoke tests: every example script runs clean and tells its story."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"

#: script name -> substring its output must contain
EXPECTATIONS = {
    "quickstart.py": "strongest level: PL-2",
    "bank_audit.py": "2PL serializable",
    "phantom_hunt.py": "PL-2.99 admits the history",
    "engine_shootout.py": "optimistic (OCC)",
    "mixed_levels.py": "NOT mixing-correct",
    "audit_pipeline.py": "lost update",
    "mobile_sync.py": "serializable (PL-3) committed histories: 10/10",
}


@pytest.mark.parametrize("script", sorted(EXPECTATIONS), ids=lambda s: s[:-3])
def test_example_runs(script):
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / script)],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert proc.returncode == 0, proc.stderr
    assert EXPECTATIONS[script] in proc.stdout


def test_every_example_has_a_smoke_test():
    scripts = {p.name for p in EXAMPLES.glob("*.py")}
    assert scripts == set(EXPECTATIONS)
