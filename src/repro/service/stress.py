"""Seeded fault-injection stress runs over the client/server stack.

:func:`run_stress` wires the whole tower together — simulated network,
server over a :class:`~repro.engine.factory.SchedulerConfig`-built engine,
N clients running transaction scripts — interleaves client progress under a
seeded driver RNG (split-phase calls, so many transactions are genuinely in
flight at once), optionally crashes and restarts the server mid-run, and
certifies every commit live against its declared isolation level with the
online :class:`~repro.core.incremental.IncrementalAnalysis` attached to the
server's recorder.

The returned :class:`StressResult` carries the three artifacts the paper's
client-centric thesis needs end to end:

* the **server-side history** (Adya notation text — byte-for-byte equal
  across runs with equal seeds and configs);
* the **client-observed journals** (what each client saw through the
  faults, attempt counts included — also byte-for-byte reproducible);
* the **certification map**: per committed transaction, its declared level
  and the live verdict that no proscribed phenomenon appeared.  Network
  faults may abort, delay and duplicate, but they must never make a
  committed transaction violate its declared level.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..core.incremental import IncrementalAnalysis
from ..core.levels import IsolationLevel
from ..observability.provenance import watching_analysis
from .client import Client
from .config import NetworkConfig, RetryPolicy, SchedulerConfig
from .errors import RequestTimeout, ServiceAborted, ServiceUnavailable
from .network import SimulatedNetwork
from .server import Server

__all__ = ["StressResult", "run_stress"]


@dataclass
class StressResult:
    """Everything observable about one stress run."""

    #: The server-side history in the paper's notation (lossless, the
    #: byte-for-byte reproducibility artifact).
    history_text: str
    #: Per-client journals: the client-observed histories.
    journals: Dict[str, Tuple[str, ...]]
    #: Per committed tid: (declared level, live certification verdict).
    certification: Dict[int, Tuple[Optional[IsolationLevel], bool]]
    committed: int
    client_aborts: int
    network_counters: Dict[str, int]
    server_counters: Dict[str, int]
    client_stats: Dict[str, int]
    crashes: int
    restarts: int
    deadlock_victims: int
    ticks: int
    #: The online monitor (finished) and the materialised history.
    monitor: IncrementalAnalysis = field(repr=False, default=None)
    history: Any = field(repr=False, default=None)
    metrics: Any = field(repr=False, default=None)
    #: The tracer (when one was attached): ``result.tracer.records`` feeds
    #: :mod:`repro.observability.traceview` and :func:`build_run_report`.
    tracer: Any = field(repr=False, default=None)
    #: Plain-dict summary of the run's configuration (fault schedule,
    #: retry policy, workload shape) — reproduced in run reports.
    config: Any = field(repr=False, default=None)

    @property
    def all_certified(self) -> bool:
        return all(ok for _lvl, ok in self.certification.values())

    def strongest_level(self):
        return self.monitor.strongest_level()

    def journal_text(self) -> str:
        """All journals, deterministically concatenated."""
        return "\n".join(
            line
            for name in sorted(self.journals)
            for line in self.journals[name]
        )

    def summary(self) -> str:
        net = self.network_counters
        lines = [
            f"committed transactions : {self.committed}",
            f"client-visible aborts  : {self.client_aborts}",
            f"logical ticks          : {self.ticks}",
            f"messages sent/dropped/duplicated : "
            f"{net['sent']}/{net['dropped']}/{net['duplicated']}",
            f"server crashes/restarts: {self.crashes}/{self.restarts}",
            f"deadlock victims       : {self.deadlock_victims}",
            f"busy replies           : {self.server_counters['busy']}",
            f"dedup cache hits       : {self.server_counters['dedup_hits']}",
            f"client retries/timeouts: {self.client_stats['retries']}"
            f"/{self.client_stats['timeouts']}",
            f"strongest level (live) : {self.strongest_level() or 'none'}",
            f"certification          : "
            + (
                f"all {len(self.certification)} commits certified"
                if self.all_certified
                else "FAILED for tids "
                + ", ".join(
                    str(t) for t, (_l, ok) in self.certification.items() if not ok
                )
            ),
        ]
        return "\n".join(lines)


class _ScriptRun:
    """One client's transaction script, driven as a coroutine."""

    def __init__(self, client: Client, gen) -> None:
        self.client = client
        self.gen = gen
        self.pending = None
        self.done = False

    def resume(self) -> None:
        try:
            self.pending = next(self.gen)
        except StopIteration:
            self.pending = None
            self.done = True

    @property
    def ready(self) -> bool:
        return not self.done and (self.pending is None or self.pending.settled)


def _transfer_script(
    client: Client,
    rng: random.Random,
    *,
    txns: int,
    keys: int,
    ops: int,
    level: Optional[str],
    counters: Dict[str, int],
):
    """The stress transaction mix: read-modify-write over a small hot key
    space (``for_update`` reads, so locking engines do not drown in upgrade
    deadlocks), with client-side restart on aborts — a miniature of a real
    service's request handler."""
    committed = 0
    while committed < txns:
        objs = rng.sample(range(keys), min(ops, keys))
        try:
            yield from client.co_call("begin", level=level)
            for obj in objs:
                key = f"k{obj}"
                reply = yield from client.co_call(
                    "read", obj=key, for_update=True
                )
                value = reply.get("value") or 0
                yield from client.co_call("write", obj=key, value=value + 1)
            yield from client.co_call("commit")
            committed += 1
        except ServiceAborted:
            counters["aborts"] += 1
        except (RequestTimeout, ServiceUnavailable):
            # Outcome unknown (crashed server or exhausted busy-retries):
            # walk away; the transaction is dead or will be undone at
            # recovery, and the session's next begin discards it.
            counters["aborts"] += 1
            client.tid = None


def run_stress(
    *,
    scheduler: SchedulerConfig | str = "locking",
    level: Optional[IsolationLevel | str] = None,
    clients: int = 4,
    txns_per_client: int = 25,
    keys: int = 8,
    ops_per_txn: int = 2,
    seed: int = 0,
    network: Optional[NetworkConfig] = None,
    retry: Optional[RetryPolicy] = None,
    crash_after_commits: Optional[int] = None,
    restart_delay: int = 25,
    max_ticks: int = 2_000_000,
    pipeline: bool = True,
    metrics: Optional[object] = None,
    tracer: Optional[object] = None,
) -> StressResult:
    """Run one seeded stress workload; see the module docstring.

    Determinism contract: equal arguments (including all seeds) produce a
    byte-for-byte identical :attr:`StressResult.history_text` and journals.

    The driver is tick-synchronized: whenever every script is blocked, the
    network's whole due message batch is delivered before any client gets
    to run again.  ``pipeline=True`` delivers that batch in one
    :meth:`~repro.service.network.SimulatedNetwork.drain_due` sweep;
    ``pipeline=False`` steps it one message at a time.  Both process the
    same messages in the same order with the same fault draws, so the two
    modes produce byte-identical histories, journals and traces — the flag
    only changes how much per-message driver overhead the run pays.
    """
    config = (
        scheduler
        if isinstance(scheduler, SchedulerConfig)
        else SchedulerConfig(scheduler=scheduler, seed=seed)
    )
    if level is not None and config.level is None:
        from dataclasses import replace

        config = replace(
            config,
            level=(
                IsolationLevel.from_string(level)
                if isinstance(level, str)
                else level
            ),
        )
    netcfg = (network or NetworkConfig()).with_seed(
        (network.seed if network is not None and network.seed else seed * 7919 + 1)
    )
    policy = retry or RetryPolicy()
    net = SimulatedNetwork(netcfg, metrics=metrics, tracer=tracer)
    if tracer is not None:
        # The determinism contract extends to traces: re-clock the tracer
        # onto the network's logical tick counter so identical seeds yield
        # byte-identical span timestamps.
        tracer.use_clock(lambda: float(net.now))
    monitor = (
        watching_analysis(tracer, order_mode="commit")
        if tracer is not None
        else IncrementalAnalysis(order_mode="commit")
    )
    server = Server(
        net,
        config,
        initial={f"k{i}": 0 for i in range(keys)},
        monitor=monitor,
        metrics=metrics,
        tracer=tracer,
    )
    declared = config.declared_level
    level_name = str(declared) if declared is not None else None
    config_summary = {
        "scheduler": config.scheduler,
        "level": level_name,
        "clients": clients,
        "txns_per_client": txns_per_client,
        "keys": keys,
        "ops_per_txn": ops_per_txn,
        "seed": seed,
        "network": {
            "seed": netcfg.seed,
            "drop": netcfg.drop,
            "duplicate": netcfg.duplicate,
            "min_delay": netcfg.min_delay,
            "max_delay": netcfg.max_delay,
        },
        "retry": {
            "timeout": policy.timeout,
            "max_attempts": policy.max_attempts,
            "backoff": policy.backoff,
        },
        "crash_after_commits": crash_after_commits,
        "restart_delay": restart_delay,
        "pipeline": pipeline,
    }
    run_span = None
    if tracer is not None:
        # Stacked root: parentless events anywhere below (server crashes,
        # net partitions, phenomenon provenance) nest under the run.
        run_span = tracer.span("stress.run", **config_summary)
    driver_rng = random.Random(seed)
    counters = {"aborts": 0}
    runs: List[_ScriptRun] = []
    for i in range(clients):
        client = Client(
            net, name=f"c{i}", policy=policy, metrics=metrics, tracer=tracer
        )
        script_rng = random.Random(seed * 1_000_003 + i + 1)
        runs.append(
            _ScriptRun(
                client,
                _transfer_script(
                    client,
                    script_rng,
                    txns=txns_per_client,
                    keys=keys,
                    ops=ops_per_txn,
                    level=level_name,
                    counters=counters,
                ),
            )
        )
    restart_at: Optional[int] = None
    crashed_once = False
    start_tick = net.now
    while True:
        if (
            crash_after_commits is not None
            and not crashed_once
            and server.commit_count >= crash_after_commits
        ):
            server.crash()
            crashed_once = True
            restart_at = net.now + restart_delay
        if restart_at is not None and net.now >= restart_at:
            server.restart()
            restart_at = None
        active = [r for r in runs if not r.done]
        if not active:
            break
        if net.now - start_tick > max_ticks:
            raise RuntimeError(
                f"stress run exceeded {max_ticks} ticks "
                f"({sum(1 for r in runs if r.done)}/{len(runs)} scripts done)"
            )
        for run in active:
            if run.pending is not None:
                run.pending.poll()
        ready = [r for r in active if r.ready]
        if ready:
            driver_rng.choice(ready).resume()
            continue
        # Every script is blocked: deliver the network's whole due batch
        # before any client runs again (tick-synchronized; see docstring).
        if pipeline:
            delivered = net.drain_due()
        else:
            delivered = 1 if net.step() else 0
            while delivered and net.has_due:
                net.step()
                delivered += 1
        if not delivered:
            # Nothing in flight: jump to the earliest client wake-up (or
            # the server restart) instead of idling tick by tick.
            wakes = [
                r.pending.next_wake
                for r in active
                if r.pending is not None and r.pending.next_wake is not None
            ]
            if restart_at is not None:
                wakes.append(restart_at)
            net.advance(max(1, min(wakes) - net.now) if wakes else 1)
    if restart_at is not None:
        server.restart()
    if tracer is not None:
        for run in runs:
            run.client.close_trace()
    monitor.finish()
    if run_span is not None:
        run_span.end(
            committed=server.commit_count,
            client_aborts=counters["aborts"],
            crashes=server.crashes,
            restarts=server.restarts,
            deadlock_victims=server.deadlock_victims,
            ticks=net.now,
        )
    # Final (authoritative) certification pass: phenomena only accumulate,
    # so re-verify every commit against the finished monitor.
    certification: Dict[int, Tuple[Optional[IsolationLevel], bool]] = {}
    history = server.history()
    for tid in sorted(history.committed - {0}):
        lvl = server.declared.get(tid)
        certification[tid] = (
            lvl,
            monitor.provides(lvl) if lvl is not None else True,
        )
    from ..core.formatting import format_history

    client_stats = {"retries": 0, "timeouts": 0, "busy": 0}
    for run in runs:
        for k, v in run.client.stats.items():
            client_stats[k] += v
    return StressResult(
        history_text=format_history(history),
        journals={
            run.client.name: tuple(run.client.journal) for run in runs
        },
        certification=certification,
        committed=server.commit_count,
        client_aborts=counters["aborts"],
        network_counters=dict(net.counters),
        server_counters=dict(server.counters),
        client_stats=client_stats,
        crashes=server.crashes,
        restarts=server.restarts,
        deadlock_victims=server.deadlock_victims,
        ticks=net.now,
        monitor=monitor,
        history=history,
        metrics=metrics,
        tracer=tracer,
        config=config_summary,
    )
