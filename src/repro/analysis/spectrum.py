"""Anomaly spectra and design-choice ablations.

Two analyses used by the ablation benchmarks:

* :func:`contention_spectrum` — how often each phenomenon appears in a
  scheduler's histories as workload contention rises.  The shape the theory
  predicts (and the benches assert): the phenomena a scheme proscribes stay
  at zero across the whole sweep, the rest grow with contention.
* :func:`predicate_mode_ablation` — the paper's Definition 3 quantification
  choice ("we use the *latest* transaction where a change to Vset(P)
  occurs"), measured: for each history, conflict-edge counts and per-level
  acceptance under ``PredicateDepMode.LATEST`` versus the literal
  ``PredicateDepMode.ALL`` reading.  Since the ALL edge set is a superset,
  LATEST never rejects a history ALL accepts — the "minimum possible
  conflicts" claim made quantitative.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple

from ..core.conflicts import PredicateDepMode, all_dependencies
from ..core.history import History
from ..core.levels import ANSI_CHAIN, IsolationLevel, satisfies
from ..core.phenomena import Analysis, Phenomenon
from ..engine.database import Database
from ..engine.scheduler import Scheduler
from ..engine.simulator import Simulator
from ..workloads.generator import WorkloadConfig, random_programs

__all__ = [
    "SpectrumPoint",
    "contention_spectrum",
    "AblationResult",
    "predicate_mode_ablation",
]

SPECTRUM_PHENOMENA: Tuple[Phenomenon, ...] = (
    Phenomenon.G0,
    Phenomenon.G1,
    Phenomenon.G_SINGLE,
    Phenomenon.G2_ITEM,
    Phenomenon.G2,
)


@dataclass
class SpectrumPoint:
    """Phenomenon rates at one contention setting."""

    hot_fraction: float
    runs: int
    rates: Dict[Phenomenon, float]

    def describe(self) -> str:
        cells = "  ".join(
            f"{p}={self.rates[p]:.0%}" for p in SPECTRUM_PHENOMENA
        )
        return f"hot={self.hot_fraction:.1f}: {cells}"


def contention_spectrum(
    scheduler_factory: Callable[[], Scheduler],
    *,
    hot_fractions: Sequence[float] = (0.0, 0.3, 0.6, 0.9),
    n_seeds: int = 10,
    base: WorkloadConfig = WorkloadConfig(
        n_programs=5, steps_per_program=3, n_keys=6, write_fraction=0.6
    ),
) -> List[SpectrumPoint]:
    """Phenomenon occurrence rates across a contention sweep."""
    points: List[SpectrumPoint] = []
    for hot in hot_fractions:
        cfg = WorkloadConfig(
            n_programs=base.n_programs,
            steps_per_program=base.steps_per_program,
            n_keys=base.n_keys,
            hot_keys=base.hot_keys,
            hot_fraction=hot,
            write_fraction=base.write_fraction,
            predicate_fraction=base.predicate_fraction,
            insert_fraction=base.insert_fraction,
            delete_fraction=base.delete_fraction,
        )
        counts = {p: 0 for p in SPECTRUM_PHENOMENA}
        for seed in range(n_seeds):
            db = Database(scheduler_factory())
            db.load(cfg.initial_state())
            Simulator(db, random_programs(cfg, seed=seed), seed=seed).run()
            analysis = Analysis(db.history())
            for p in SPECTRUM_PHENOMENA:
                counts[p] += analysis.exhibits(p)
        points.append(
            SpectrumPoint(
                hot, n_seeds, {p: counts[p] / n_seeds for p in SPECTRUM_PHENOMENA}
            )
        )
    return points


@dataclass
class AblationResult:
    """LATEST-vs-ALL predicate-dependency comparison over a history set."""

    histories: int
    edges_latest: int
    edges_all: int
    accepted_latest: Dict[IsolationLevel, int]
    accepted_all: Dict[IsolationLevel, int]
    #: histories where the two modes disagree at some level
    divergent: int

    def describe(self) -> str:
        lines = [
            f"predicate-dependency ablation over {self.histories} histories:",
            f"  conflict edges: LATEST={self.edges_latest}  ALL={self.edges_all}",
        ]
        for level in self.accepted_latest:
            lines.append(
                f"  {level}: accepted LATEST={self.accepted_latest[level]}"
                f"  ALL={self.accepted_all[level]}"
            )
        lines.append(f"  divergent histories: {self.divergent}")
        return "\n".join(lines)


def predicate_mode_ablation(
    histories: Sequence[History],
    levels: Sequence[IsolationLevel] = ANSI_CHAIN,
) -> AblationResult:
    """Compare the two Definition 3 readings over given histories.

    Asserts the structural containments the theory demands: ALL's edge set
    contains LATEST's, and LATEST acceptance contains ALL acceptance.
    """
    edges_latest = edges_all = divergent = 0
    accepted_latest = {level: 0 for level in levels}
    accepted_all = {level: 0 for level in levels}
    for history in histories:
        latest_edges = all_dependencies(history, PredicateDepMode.LATEST)
        all_edges = all_dependencies(history, PredicateDepMode.ALL)
        edges_latest += len(latest_edges)
        edges_all += len(all_edges)
        keys = lambda edges: {
            (e.src, e.dst, e.kind, e.obj, e.version, e.predicate) for e in edges
        }
        missing = keys(latest_edges) - keys(all_edges)
        if missing:
            raise AssertionError(
                f"LATEST produced edges ALL lacks: {missing}"
            )
        latest_analysis = Analysis(history, PredicateDepMode.LATEST)
        all_analysis = Analysis(history, PredicateDepMode.ALL)
        diverged = False
        for level in levels:
            ok_latest = satisfies(history, level, analysis=latest_analysis).ok
            ok_all = satisfies(history, level, analysis=all_analysis).ok
            if ok_all and not ok_latest:
                raise AssertionError(
                    f"ALL accepted a history LATEST rejects at {level}"
                )
            accepted_latest[level] += ok_latest
            accepted_all[level] += ok_all
            diverged |= ok_latest != ok_all
        divergent += diverged
    return AblationResult(
        len(histories),
        edges_latest,
        edges_all,
        accepted_latest,
        accepted_all,
        divergent,
    )
