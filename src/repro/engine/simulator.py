"""Deterministic interleaved execution of transaction programs.

The simulator runs a set of :class:`~repro.engine.programs.Program` instances
against one :class:`~repro.engine.database.Database`, interleaving their
steps under a seeded RNG — same seed, same history, bit for bit.  It models
the concurrency a real system gets from threads without any actual threads:

* each scheduling round picks a random unfinished program and runs its next
  step;
* a step that raises :class:`~repro.exceptions.WouldBlock` leaves the
  program *waiting* on the lock holders; waiting programs are retried once
  a holder finishes;
* deadlocks (cycles in the waits-for graph assembled from the ``WouldBlock``
  holders) abort the youngest transaction of the cycle, which restarts with
  a fresh tid if retries remain — so histories genuinely contain the abort
  and the rerun, as a real system's would;
* scheduler-initiated aborts (OCC validation failures, SI first-committer
  losses) likewise restart the program up to ``max_retries`` times.

``Simulator.run`` returns a :class:`SimulationResult` with the history, the
per-program outcomes, and counters the benchmarks report.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Set

from ..core.history import History
from ..exceptions import TransactionAborted, WouldBlock
from .database import Database, TransactionHandle
from .programs import Program, Step

__all__ = ["Simulator", "SimulationResult", "ProgramOutcome"]


@dataclass
class ProgramOutcome:
    """How one program fared across its attempts."""

    program: str
    tids: List[int] = field(default_factory=list)
    committed_tid: Optional[int] = None
    aborts: int = 0
    regs: Dict[str, Any] = field(default_factory=dict)

    @property
    def committed(self) -> bool:
        return self.committed_tid is not None


@dataclass
class SimulationResult:
    history: History
    outcomes: List[ProgramOutcome]
    steps_executed: int
    deadlocks: int
    #: The online monitor the run was observed through, if one was attached
    #: (see ``Simulator(monitor=...)``); it has consumed every event.
    monitor: Optional[object] = None
    #: The metrics registry the run accounted into, if one was attached
    #: (see ``Simulator(metrics=...)``): begins/commits/aborts by reason,
    #: lock waits and holds in logical steps, deadlock victims, ...
    metrics: Optional[object] = None

    @property
    def committed_count(self) -> int:
        return sum(1 for o in self.outcomes if o.committed)

    @property
    def abort_count(self) -> int:
        return sum(o.aborts for o in self.outcomes)


class _Run:
    """One program's execution state."""

    def __init__(self, program: Program, index: int):
        self.program = program
        self.index = index
        self.outcome = ProgramOutcome(program.name)
        self.queue: List[Step] = []
        self.regs: Dict[str, Any] = {}
        self.txn: Optional[TransactionHandle] = None
        self.waiting_on: Optional[frozenset[int]] = None
        self.done = False
        self.failed = False
        #: Registry clock when the current lock wait began (observability).
        self.wait_started: Optional[int] = None
        #: Open tracer span for the current attempt (observability).
        self.span: Optional[object] = None

    @property
    def active(self) -> bool:
        return not self.done and not self.failed

    def start(self, db: Database) -> None:
        self.txn = db.begin(self.program.level)
        self.outcome.tids.append(self.txn.tid)
        self.queue = list(self.program.steps)
        self.regs = {}
        self.waiting_on = None


class Simulator:
    """Seeded round-based interleaver."""

    def __init__(
        self,
        db: Database,
        programs: Sequence[Program],
        *,
        seed: int = 0,
        max_retries: int = 20,
        max_steps: int = 100_000,
        monitor: Optional[object] = None,
        metrics: Optional[object] = None,
        tracer: Optional[object] = None,
    ):
        self.db = db
        self.programs = list(programs)
        self.rng = random.Random(seed)
        self.max_retries = max_retries
        self.max_steps = max_steps
        self.deadlocks = 0
        self.monitor = monitor
        # Observability: thread the sinks through the scheduler (and from
        # there the recorder, lock manager and store).  The registry clock
        # ticks once per scheduling round, so every duration metric is in
        # deterministic logical steps.
        self.metrics = metrics
        self.tracer = tracer
        if metrics is not None or tracer is not None:
            db.scheduler.instrument(metrics=metrics, tracer=tracer)
        if monitor is not None:
            # Observe the execution online: the recorder forwards every
            # event (including any already recorded, e.g. the initial load)
            # to the monitor as it happens.
            db.scheduler.recorder.attach_monitor(monitor)

    # ------------------------------------------------------------------

    def run(self) -> SimulationResult:
        metrics = self.metrics
        sched_name = self.db.scheduler.name
        self._run_span = None
        if self.tracer is not None:
            self._run_span = self.tracer.span(
                "simulation.run",
                stack=False,
                scheduler=sched_name,
                programs=[p.name for p in self.programs],
            )
        runs = [_Run(p, i) for i, p in enumerate(self.programs)]
        for run in runs:
            self._start(run)
        steps = 0
        steps_counter = None
        if metrics is not None:
            steps_counter = metrics.counter(
                "sim_steps_total", "scheduling rounds executed"
            ).labels(scheduler=sched_name)
        while steps < self.max_steps:
            candidates = [r for r in runs if r.active]
            if not candidates:
                break
            run = self.rng.choice(candidates)
            steps += 1
            if steps_counter is not None:
                metrics.tick()
                steps_counter.inc()
            self._step(run, runs)
            if all(r.waiting_on is not None for r in runs if r.active):
                # Everyone is blocked but no waits-for cycle was found — the
                # blockers must be committed/aborted already; clear waits and
                # retry (lock tables are re-consulted on the next attempt).
                for r in runs:
                    if r.active:
                        r.waiting_on = None
        # Step budget exhausted: abort whatever is still running so the
        # history is complete.
        for run in runs:
            if run.active and run.txn is not None:
                run.txn.abort()
                run.failed = True
                if run.span is not None:
                    run.span.end(outcome="cut-off")
                    run.span = None
        if self.monitor is not None and hasattr(self.monitor, "finish"):
            # Apply the completion rule so the monitor's verdicts line up
            # with the auto-completed history below.
            self.monitor.finish()
        if self._run_span is not None:
            self._run_span.end(steps=steps, deadlocks=self.deadlocks)
        return SimulationResult(
            self.db.history(),
            [r.outcome for r in runs],
            steps,
            self.deadlocks,
            monitor=self.monitor,
            metrics=metrics,
        )

    # ------------------------------------------------------------------

    def _start(self, run: _Run) -> None:
        """(Re)start a program, opening its per-attempt transaction span."""
        run.start(self.db)
        if self.tracer is not None:
            run.span = self.tracer.span(
                "txn",
                parent=self._run_span,
                stack=False,
                program=run.program.name,
                tid=run.txn.tid,
                attempt=len(run.outcome.tids),
            )

    def _step(self, run: _Run, runs: List["_Run"]) -> None:
        assert run.txn is not None
        metrics = self.metrics
        if metrics is not None and run.waiting_on is not None:
            # A parked program got rescheduled: its blocked operation is
            # about to be retried against the lock tables.
            metrics.counter(
                "wouldblock_retries_total",
                "blocked operations retried after a holder finished",
            ).inc(scheduler=self.db.scheduler.name)
        try:
            if run.queue:
                step = run.queue[0]
                extra = step.run(run.txn, run.regs)
                run.queue.pop(0)
                if extra:
                    run.queue[:0] = list(extra)
                if run.span is not None:
                    run.span.event("op", step=type(step).__name__)
            else:
                run.txn.commit()
                run.outcome.committed_tid = run.txn.tid
                run.outcome.regs = dict(run.regs)
                run.done = True
                if run.span is not None:
                    run.span.end(outcome="committed")
                    run.span = None
            if metrics is not None and run.wait_started is not None:
                metrics.histogram(
                    "lock_wait_steps", "lock wait durations in logical steps"
                ).observe(
                    metrics.clock - run.wait_started,
                    scheduler=self.db.scheduler.name,
                )
            run.wait_started = None
            run.waiting_on = None
        except WouldBlock as block:
            run.waiting_on = block.holders
            if metrics is not None and run.wait_started is None:
                run.wait_started = metrics.clock
                metrics.counter(
                    "wouldblock_waits_total", "operations that entered a lock wait"
                ).inc(scheduler=self.db.scheduler.name)
            if run.span is not None:
                run.span.event(
                    "blocked",
                    resource=block.resource,
                    holders=sorted(block.holders),
                )
            self._resolve_deadlock(run, runs)
        except TransactionAborted as aborted:
            self._handle_abort(run, reason=aborted.reason)

    def _handle_abort(self, run: _Run, reason: str = "aborted") -> None:
        run.outcome.aborts += 1
        run.waiting_on = None
        run.wait_started = None  # the wait ended in an abort, not a grant
        if run.span is not None:
            run.span.end(outcome="aborted", reason=reason)
            run.span = None
        if run.outcome.aborts > self.max_retries:
            run.failed = True
            return
        if self.metrics is not None:
            # Reasons carry per-incident detail ("occ-validation against
            # T5"); label with the leading word to keep cardinality bounded.
            self.metrics.counter(
                "txn_restarts_total", "program restarts after aborts"
            ).inc(
                scheduler=self.db.scheduler.name,
                reason=reason.split(" ", 1)[0] if reason else "aborted",
            )
        self._start(run)

    # ------------------------------------------------------------------

    def _resolve_deadlock(self, blocked: _Run, runs: List["_Run"]) -> None:
        """Abort the *originally* youngest transaction on a waits-for cycle.

        Age is the tid of the program's first attempt, not the current one:
        a restarted victim keeps its seniority, so it cannot be selected
        forever (the naive abort-the-current-youngest rule starves restarts,
        which always re-enter with the largest tid — measured live in
        ``bench_scaling_engine``'s history).
        """
        waits: Dict[int, frozenset[int]] = {}
        by_tid: Dict[int, _Run] = {}
        for r in runs:
            if r.active and r.txn is not None:
                by_tid[r.txn.tid] = r
                if r.waiting_on:
                    waits[r.txn.tid] = r.waiting_on
        cycle = _find_cycle(waits)
        if not cycle:
            return
        candidates = [by_tid[tid] for tid in cycle if tid in by_tid]
        if not candidates:
            return
        victim = max(candidates, key=lambda r: r.outcome.tids[0])
        if victim.txn is None:
            return
        self.deadlocks += 1
        if self.metrics is not None:
            sched = self.db.scheduler.name
            self.metrics.counter(
                "deadlock_victims_total", "transactions aborted to break deadlocks"
            ).inc(scheduler=sched)
            self.metrics.histogram(
                "waits_for_cycle_len", "waits-for cycle lengths at resolution"
            ).observe(len(cycle), scheduler=sched)
            self.metrics.counter(
                "txn_aborts_total", "transaction aborts by reason"
            ).inc(scheduler=sched, reason="deadlock")
        if self.tracer is not None:
            self.tracer.event(
                "deadlock",
                span=self._run_span,
                cycle=list(cycle),
                waits={str(t): sorted(h) for t, h in waits.items()},
                victim=victim.txn.tid,
                victim_program=victim.program.name,
            )
        victim.txn.abort()
        victim.waiting_on = None
        self._handle_abort(victim, reason="deadlock")


def _find_cycle(waits: Dict[int, frozenset[int]]) -> Optional[List[int]]:
    """Nodes of some cycle in the waits-for graph in cycle order, or
    ``None``.  The order lets observers report the actual waits-for loop
    (``cycle[i]`` waits on ``cycle[i+1]``, the last waits on the first)."""
    visiting: Set[int] = set()
    visited: Set[int] = set()
    stack: List[int] = []

    def dfs(node: int) -> Optional[List[int]]:
        visiting.add(node)
        stack.append(node)
        for nxt in waits.get(node, ()):
            if nxt in visiting:
                return stack[stack.index(nxt) :]
            if nxt not in visited:
                found = dfs(nxt)
                if found:
                    return found
        visiting.discard(node)
        visited.add(node)
        stack.pop()
        return None

    for start in list(waits):
        if start not in visited:
            found = dfs(start)
            if found:
                return found
    return None
