"""The service's client side: sessions, idempotency tokens, retries.

A :class:`Client` owns one server session.  Every logical operation gets a
fresh request id; ``(session, rid)`` is the idempotency token, and every
retry — after a timeout or a ``busy`` reply — reuses it, so the server can
never apply an operation twice no matter how the network mangles the
exchange.  Retries follow the session's :class:`~repro.service.config.
RetryPolicy`: deterministic exponential backoff in logical ticks.

Two call styles:

* **synchronous** — ``client.read("x")`` drives the network until the
  reply arrives (convenient for single-client scripts and docs);
* **split-phase** — ``submit`` returns a :class:`PendingCall`; a driver
  (see :mod:`repro.service.stress`) interleaves many clients by polling
  pendings as it steps the network, which is how concurrent traffic is
  generated without threads.

Every completed operation is journalled.  The journal is the
*client-observed history* — exactly what this client saw through the
unreliable boundary, attempt counts included — and is deterministic: same
seeds, same journal, byte for byte.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional

from .config import RetryPolicy
from .errors import RequestTimeout, ServiceAborted, ServiceUnavailable
from .network import SimulatedNetwork

__all__ = ["Client", "PendingCall"]


class PendingCall:
    """One logical operation in flight: request, retries, final outcome."""

    __slots__ = (
        "client", "kind", "payload", "rid", "attempts", "dest",
        "deadline", "resume_at", "reply", "error", "span", "submitted_at",
    )

    def __init__(self, client: "Client", kind: str, payload: Dict[str, Any]):
        self.client = client
        self.kind = kind
        self.payload = payload
        self.rid = payload["rid"]
        #: Destination endpoint; routed clients (cluster) re-resolve it on
        #: retries so a request never chases a retired shard forever.
        self.dest = client._route(kind, payload)
        self.attempts = 0
        #: Tick the operation was first submitted — settle time minus this
        #: is the operation's client-observed latency.
        self.submitted_at = client.network.now
        self.deadline: Optional[int] = None
        self.resume_at: Optional[int] = None
        self.reply: Optional[Dict[str, Any]] = None
        self.error: Optional[Exception] = None
        #: Open ``client.request`` span covering every attempt (tracing).
        self.span: Optional[object] = None

    @property
    def settled(self) -> bool:
        return self.reply is not None or self.error is not None

    def result(self) -> Dict[str, Any]:
        """The final reply; raises the service error on failure."""
        if self.error is not None:
            raise self.error
        assert self.reply is not None
        return self.reply

    # -- driver interface ----------------------------------------------

    def _send(self) -> None:
        self.attempts += 1
        if self.attempts > 1:
            self.client._retries_total += 1
            self.client._count("service_client_retries_total",
                               "client request retries by verb")
        if self.span is not None:
            self.span.event("send", attempt=self.attempts)
        net = self.client.network
        net.send(self.client.name, self.dest, dict(self.payload))
        self.deadline = net.now + self.client.policy.timeout
        self.resume_at = None

    def _backoff_or_fail(self, exhausted_error: Exception) -> None:
        if self.attempts >= self.client.policy.max_attempts:
            self.error = exhausted_error
            return
        self.deadline = None
        self.resume_at = (
            self.client.network.now
            + self.client.policy.backoff_before(self.attempts)
        )
        if self.span is not None:
            self.span.event("backoff", until=self.resume_at)

    def poll(self) -> bool:
        """Advance the state machine against the current network time and
        inbox; returns :attr:`settled`."""
        if self.settled:
            return True
        client = self.client
        now = client.network.now
        for reply in client._drain(self.rid):
            error = reply.get("error")
            if error == "busy":
                client._busy_total += 1
                client._count("service_client_busy_total",
                              "busy replies observed by clients")
                if self.span is not None:
                    self.span.event("busy", holders=reply.get("holders"))
                self._backoff_or_fail(
                    ServiceUnavailable(
                        f"{self.kind} rid={self.rid}: still locked after "
                        f"{self.attempts} attempts"
                    )
                )
                return self.settled
            if error == "shed":
                # Admission control turned the begin away: back off for the
                # server-directed interval, not the client's own schedule.
                client._shed_total += 1
                client._count("service_client_shed_total",
                              "shed replies observed by clients")
                if self.span is not None:
                    self.span.event(
                        "shed", retry_after=reply.get("retry_after")
                    )
                if self.attempts >= client.policy.max_attempts:
                    self.error = ServiceUnavailable(
                        f"{self.kind} rid={self.rid}: shed after "
                        f"{self.attempts} attempts"
                    )
                    return True
                self.deadline = None
                self.resume_at = now + int(
                    reply.get("retry_after")
                    or client.policy.backoff_before(self.attempts)
                )
                if self.span is not None:
                    self.span.event("backoff", until=self.resume_at)
                return self.settled
            if error == "stale":
                continue  # echo of a superseded duplicate; keep waiting
            if error == "moved":
                # Shard-map change beat this request to the wire: re-route
                # against the refreshed map and resend the same idempotency
                # token to the new owner.
                if self.span is not None:
                    self.span.event("moved", owner=reply.get("owner"))
                client._on_moved(self, reply)
                return self.settled
            if error == "lagging":
                # A replica behind this session's watermark: the session's
                # guarantee policy decides — wait for catch-up, or redirect
                # to the primary (cluster clients override the hook).
                if self.span is not None:
                    self.span.event(
                        "lagging",
                        applied=reply.get("applied"),
                        required=reply.get("required"),
                    )
                client._on_lagging(self, reply)
                return self.settled
            if error == "aborted":
                self.error = ServiceAborted(reply.get("reason", "aborted"))
                client._on_abort_reply()
                return True
            self.reply = reply
            return True
        if self.deadline is not None and now >= self.deadline:
            client._timeouts_total += 1
            client._count("service_client_timeouts_total",
                          "client request timeouts")
            if self.span is not None:
                self.span.event("timeout", attempt=self.attempts)
            self._backoff_or_fail(
                RequestTimeout(
                    f"{self.kind} rid={self.rid}: no reply after "
                    f"{self.attempts} attempts"
                )
            )
            if self.settled:
                return True
        if self.resume_at is not None and now >= self.resume_at:
            # Re-resolve the destination first: a retry that raced a
            # shard-map change must consult the fresh map, not hammer the
            # stale shard (plain clients keep their fixed server).
            self.client._refresh_destination(self)
            self._send()
        return self.settled

    @property
    def next_wake(self) -> Optional[int]:
        """The tick at which this pending next needs attention."""
        if self.settled:
            return None
        return self.deadline if self.deadline is not None else self.resume_at


class Client:
    """One session against one server endpoint."""

    def __init__(
        self,
        network: SimulatedNetwork,
        *,
        name: str = "client",
        server: str = "server",
        policy: Optional[RetryPolicy] = None,
        metrics: Optional[object] = None,
        tracer: Optional[object] = None,
    ) -> None:
        self.network = network
        self.name = name
        self.server = server
        self.policy = policy or RetryPolicy()
        self.metrics = metrics
        #: Trace-context origin: with a tracer attached, every transaction
        #: gets a fresh ``trace_id`` and a ``client.txn`` root span; every
        #: logical operation gets a ``client.request`` child span whose
        #: ``(trace_id, span_id)`` rides in the message envelope so the
        #: network and server parent their spans under it.
        self.tracer = tracer
        self._inbox = network.register_inbox(name)
        self._rid = 0
        self._acked = -1
        self.tid: Optional[int] = None
        self.journal: List[str] = []
        self._retries_total = 0
        self._timeouts_total = 0
        self._busy_total = 0
        self._shed_total = 0
        self._txn_span: Optional[object] = None
        self._trace_id: Optional[str] = None
        self._trace_seq = 0

    # -- bookkeeping -----------------------------------------------------

    def _drain(self, rid: int) -> List[Dict[str, Any]]:
        """Replies matching ``rid``; stale replies (earlier rids, network
        duplicates) are discarded."""
        matched, keep = [], []
        for src, payload in self._inbox:
            if payload.get("rid") == rid:
                matched.append(payload)
            elif payload.get("rid", -1) > rid:
                keep.append((src, payload))  # shouldn't happen; be safe
        self._inbox[:] = keep
        return matched

    def _count(self, name: str, help: str) -> None:
        if self.metrics is not None:
            self.metrics.counter(name, help).inc(session=self.name)

    def _on_abort_reply(self) -> None:
        self.tid = None
        self._end_txn_span("aborted")

    # -- routing ---------------------------------------------------------

    def _route(self, kind: str, payload: Dict[str, Any]) -> str:
        """Destination endpoint for one operation.  The plain client talks
        to its fixed server; cluster clients override this to consult the
        shard map (keyed operations), pick the 2PC coordinator (cross-shard
        commits), and so on."""
        return self.server

    def _refresh_destination(self, pending: "PendingCall") -> None:
        """Hook before every retry send: re-resolve ``pending.dest``.

        The fix for stale-shard retry loops lives in the cluster client's
        override — a commit retry that raced a shard-map change re-consults
        the map instead of retrying the retired endpoint forever.  The
        plain client's destination never moves."""

    def _on_moved(self, pending: "PendingCall", reply: Dict[str, Any]) -> None:
        """A ``moved`` reply: ownership of the key changed under us.
        Re-route and resend the same idempotency token immediately."""
        if pending.attempts >= self.policy.max_attempts:
            pending.error = ServiceUnavailable(
                f"{pending.kind} rid={pending.rid}: still moved after "
                f"{pending.attempts} attempts"
            )
            return
        pending.dest = self._route(pending.kind, pending.payload)
        pending._send()

    def _on_lagging(self, pending: "PendingCall", reply: Dict[str, Any]) -> None:
        """A ``lagging`` reply (replica behind the session watermark).
        The plain client never routes to replicas; treat it as transient
        and back off.  The cluster client overrides this with the
        session-guarantee policy (wait vs redirect-to-primary)."""
        pending._backoff_or_fail(
            ServiceUnavailable(
                f"{pending.kind} rid={pending.rid}: replica still lagging "
                f"after {pending.attempts} attempts"
            )
        )

    # -- trace context ---------------------------------------------------

    def _begin_trace(self) -> None:
        """Start a fresh trace for a new transaction (``begin``)."""
        self._end_txn_span("superseded")
        self._trace_seq += 1
        self._trace_id = f"{self.name}#{self._trace_seq}"
        self._txn_span = self.tracer.span(
            "client.txn",
            stack=False,
            session=self.name,
            trace_id=self._trace_id,
        )

    def _end_txn_span(self, outcome: str) -> None:
        if self._txn_span is not None:
            self._txn_span.end(outcome=outcome)
            self._txn_span = None

    def close_trace(self, outcome: str = "unfinished") -> None:
        """Close any dangling transaction span (end of a driver run)."""
        self._end_txn_span(outcome)

    def _journal(self, text: str) -> None:
        self.journal.append(f"t={self.network.now:<6} {self.name}: {text}")

    @property
    def stats(self) -> Dict[str, int]:
        return {
            "retries": self._retries_total,
            "timeouts": self._timeouts_total,
            "busy": self._busy_total,
            "shed": self._shed_total,
        }

    # -- split-phase interface -------------------------------------------

    def submit(self, kind: str, **fields: Any) -> PendingCall:
        """Send one logical operation; returns its pending handle."""
        self._rid += 1
        payload = {
            "kind": kind,
            "session": self.name,
            "rid": self._rid,
            "acked": self._acked,
            **fields,
        }
        if self.tid is not None and kind != "begin":
            payload.setdefault("tid", self.tid)
        pending = PendingCall(self, kind, payload)
        if self.tracer is not None:
            if kind == "begin":
                self._begin_trace()
            trace_id = (
                self._trace_id
                if self._txn_span is not None
                else f"{self.name}#r{self._rid}"
            )
            attrs = {
                "verb": kind,
                "session": self.name,
                "rid": self._rid,
                "trace_id": trace_id,
            }
            obj = fields.get("obj") or fields.get("relation")
            if obj is not None:
                attrs["obj"] = obj
            pending.span = self.tracer.span(
                "client.request",
                parent=self._txn_span,
                stack=False,
                **attrs,
            )
            payload["trace"] = {"id": trace_id, "span": pending.span.id}
        pending._send()
        return pending

    def co_call(self, kind: str, **fields: Any) -> Iterator[PendingCall]:
        """Coroutine form: yields the pending until settled, then finishes
        the operation (journalling + error raising) — drivers interleave
        many of these."""
        pending = self.submit(kind, **fields)
        while not pending.poll():
            yield pending
        return self._finish(pending)

    def _finish(self, pending: PendingCall) -> Dict[str, Any]:
        """Journal the outcome and translate errors."""
        self._acked = max(self._acked, pending.rid)
        args = {
            k: v
            for k, v in pending.payload.items()
            # "trace" is context plumbing, not a logical argument (the
            # journal must be byte-identical with and without a tracer);
            # watermark floors and routing pins are replication plumbing
            # likewise.
            if k not in (
                "kind", "session", "rid", "acked", "tid", "trace",
                "min_offset", "_route", "_pin",
            )
        }
        arg_text = ",".join(f"{k}={v}" for k, v in sorted(args.items()))
        try:
            reply = pending.result()
        except Exception as exc:
            self._journal(
                f"{pending.kind}({arg_text}) -> {type(exc).__name__}({exc}) "
                f"[attempts={pending.attempts}]"
            )
            if pending.span is not None:
                pending.span.end(
                    outcome=type(exc).__name__, attempts=pending.attempts
                )
            raise
        if pending.span is not None:
            pending.span.end(outcome="ok", attempts=pending.attempts)
        if pending.kind == "begin":
            self.tid = reply["tid"]
            if self._txn_span is not None:
                self._txn_span.set(tid=reply["tid"])
            out = f"tid={reply['tid']}"
        elif pending.kind in ("commit", "abort"):
            out = "ok" + (" (recovered)" if reply.get("recovered") else "")
            if pending.kind == "commit" and reply.get("certified") is False:
                out += " UNCERTIFIED"
            self.tid = None
            self._end_txn_span(pending.kind + ("-recovered" if reply.get("recovered") else ""))
        elif "value" in reply:
            out = f"value={reply['value']}"
        elif "obj" in reply:
            out = f"obj={reply['obj']}"
        else:
            out = "ok"
        self._journal(
            f"{pending.kind}({arg_text}) -> {out} [attempts={pending.attempts}]"
        )
        return reply

    # -- synchronous interface -------------------------------------------

    def call(self, kind: str, **fields: Any) -> Dict[str, Any]:
        """Synchronous operation: drives the network until settled."""
        pending = self.submit(kind, **fields)
        self.network.run_until(pending.poll)
        return self._finish(pending)

    def begin(self, level: Optional[object] = None) -> int:
        """Start a transaction; returns its server-side tid."""
        reply = self.call(
            "begin", level=str(level) if level is not None else None
        )
        return reply["tid"]

    def read(self, obj: str, *, for_update: bool = False) -> Any:
        return self.call("read", obj=obj, for_update=for_update).get("value")

    def write(self, obj: str, value: Any) -> None:
        self.call("write", obj=obj, value=value)

    def delete(self, obj: str) -> None:
        self.call("delete", obj=obj)

    def insert(self, relation: str, value: Any) -> str:
        return self.call("insert", relation=relation, value=value)["obj"]

    def commit(self) -> Dict[str, Any]:
        return self.call("commit")

    def abort(self) -> Dict[str, Any]:
        return self.call("abort")

    def ping(self) -> Dict[str, Any]:
        return self.call("ping")
