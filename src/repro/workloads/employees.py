"""Employee/department workload: the paper's predicate examples, runnable.

Sections 4.3–5.4 revolve around an ``Employee`` relation queried by
department — salary raises over ``Dept = Sales`` (``H_pred-update``),
department moves (``H_pred-read``), and the sum-of-salaries phantom
(``H_phantom``).  This module provides those as engine programs:

* :func:`raise_sales` — ``UPDATE EMPLOYEE SET SAL = SAL + d WHERE
  DEPT = 'Sales'``;
* :func:`hire` / :func:`fire` / :func:`move_department` — inserts, deletes
  and updates that change the matched set (phantom generators);
* :func:`sum_salaries` — the Figure 5 audit: read the department through the
  predicate, total the salaries, and compare against a maintained ``Sum``
  row, storing the discrepancy in the program's registers.

Predicates are :class:`~repro.core.predicates.FieldPredicate` over the
``emp`` relation, so engine-emitted histories exercise the full predicate
machinery (version sets, match changes, predicate anti-dependencies).
"""

from __future__ import annotations

import random
from typing import Any, Dict, List, Optional

from ..core.levels import IsolationLevel
from ..core.predicates import FieldPredicate, Predicate
from ..engine.programs import (
    Compute,
    Count,
    Delete,
    Insert,
    Program,
    Read,
    Select,
    UpdateWhere,
    Write,
)

__all__ = [
    "RELATION",
    "dept_predicate",
    "initial_employees",
    "raise_sales",
    "hire",
    "fire",
    "move_department",
    "sum_salaries",
    "employee_programs",
]

RELATION = "emp"
SUM_OBJECT = "sums:sales"


def dept_predicate(dept: str) -> Predicate:
    """``DEPT = <dept>`` over the employee relation."""
    return FieldPredicate(RELATION, "dept", "==", dept, name=f"Dept={dept}")


def initial_employees(
    n: int = 4, *, dept: str = "Sales", salary: int = 10
) -> Dict[str, Any]:
    """``Database.load`` payload: ``n`` employees in ``dept`` plus the
    maintained sum-of-salaries row (Figure 5's ``Sum``)."""
    state: Dict[str, Any] = {
        f"{RELATION}:{i}": {"name": f"e{i}", "dept": dept, "sal": salary}
        for i in range(1, n + 1)
    }
    state[SUM_OBJECT] = n * salary
    return state


def raise_sales(
    name: str = "raise",
    *,
    dept: str = "Sales",
    delta: int = 10,
    level: Optional[IsolationLevel] = None,
) -> Program:
    """The Section 4.3.2 statement: raise every salary in the department,
    and keep the maintained sum consistent."""
    return Program(
        name,
        [
            Count(dept_predicate(dept), into="n"),
            UpdateWhere(
                dept_predicate(dept), lambda row: {**row, "sal": row["sal"] + delta}
            ),
            Read(SUM_OBJECT, into="sum"),
            Write(SUM_OBJECT, lambda regs: regs["sum"] + delta * regs["n"]),
        ],
        level=level,
    )


def hire(
    name: str,
    *,
    dept: str = "Sales",
    salary: int = 10,
    level: Optional[IsolationLevel] = None,
) -> Program:
    """Insert a new employee and update the maintained sum (Figure 5's T2)."""
    return Program(
        name,
        [
            Insert(RELATION, {"name": name, "dept": dept, "sal": salary}, into="obj"),
            Read(SUM_OBJECT, into="sum"),
            Write(SUM_OBJECT, lambda regs: regs["sum"] + salary),
        ],
        level=level,
    )


def fire(
    name: str,
    employee: str,
    *,
    level: Optional[IsolationLevel] = None,
) -> Program:
    """Delete an employee and update the maintained sum."""
    return Program(
        name,
        [
            Read(employee, into="row"),
            Delete(employee),
            Read(SUM_OBJECT, into="sum"),
            Write(
                SUM_OBJECT,
                lambda regs: regs["sum"]
                - (regs["row"]["sal"] if regs["row"] else 0),
            ),
        ],
        level=level,
    )


def move_department(
    name: str,
    employee: str,
    new_dept: str,
    *,
    level: Optional[IsolationLevel] = None,
) -> Program:
    """Update one employee's department (the H_pred-read mutation)."""
    return Program(
        name,
        [
            Read(employee, into="row"),
            Write(
                employee,
                lambda regs: {**regs["row"], "dept": new_dept}
                if regs["row"]
                else {"dept": new_dept},
            ),
        ],
        level=level,
    )


def sum_salaries(
    name: str = "audit",
    *,
    dept: str = "Sales",
    level: Optional[IsolationLevel] = None,
) -> Program:
    """Figure 5's T1: read the department by predicate, total the salaries,
    and compare with the maintained sum.  ``regs['consistent']`` records the
    verdict; a False here is the phantom observed."""

    def check(regs: Dict[str, Any]) -> None:
        observed = sum(row["sal"] for row in regs.get("rows", {}).values())
        regs["observed"] = observed
        regs["consistent"] = observed == regs.get("stored")

    return Program(
        name,
        [
            Select(dept_predicate(dept), into="rows"),
            Read(SUM_OBJECT, into="stored"),
            Compute(check),
        ],
        level=level,
    )


def employee_programs(
    *,
    n_hires: int = 1,
    n_raises: int = 1,
    n_audits: int = 1,
    n_moves: int = 0,
    seed: int = 0,
    level: Optional[IsolationLevel] = None,
) -> List[Program]:
    """A seeded mix of the programs above (audits interleaved with
    match-changing writers — the phantom crucible)."""
    rng = random.Random(seed)
    programs: List[Program] = []
    for i in range(n_hires):
        programs.append(hire(f"hire{i}", level=level))
    for i in range(n_raises):
        programs.append(raise_sales(f"raise{i}", level=level))
    for i in range(n_moves):
        programs.append(
            move_department(
                f"move{i}", f"{RELATION}:{rng.randrange(1, 4)}", "Legal", level=level
            )
        )
    for i in range(n_audits):
        programs.append(sum_salaries(f"audit{i}", level=level))
    rng.shuffle(programs)
    return programs
