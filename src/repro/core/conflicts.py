"""Direct conflicts between transactions (paper Section 4.4, Definitions 2–6).

Three kinds of direct conflict produce the edges of the Direct Serialization
Graph, each with an item flavour and a predicate flavour:

* **write-dependency** (``ww``, Definition 6): ``T_j`` installs the version
  immediately following a version installed by ``T_i``.
* **read-dependency** (``wr``, Definition 3): ``T_j`` reads a version ``T_i``
  installed, or ``T_i`` installed the version that *changed the matches*
  (Definition 2) of a predicate read by ``T_j``.
* **anti-dependency** (``rw``, Definition 5): ``T_j`` installs the next
  version of an object ``T_i`` read, or ``T_j`` *overwrites* (Definition 4) a
  predicate read by ``T_i``.

Only committed transactions conflict (the DSG has only committed nodes);
implicit setup transactions count as committed.  Reads of versions created by
aborted or unfinished transactions yield no edges — phenomena G1a/G1b condemn
those reads directly on the history.

Predicate-read-dependency quantification.  Definition 3's prose ("of all the
transactions that have caused the tuples to match (or not match) ... we use
the *latest* transaction where a change to Vset(P) occurs") and the
``H_pred-read`` example add a single edge per object, from the latest
match-changing version at or before the selected version.  The literal
formula ("``i = k`` or ``x_i << x_k``, and ``x_i`` changes the matches")
quantifies over every such version.  :class:`PredicateDepMode` selects the
reading; the default :attr:`PredicateDepMode.LATEST` follows the example.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, replace
from enum import Enum
from typing import List, Optional

from .events import PredicateRead
from .history import History
from .objects import Version
from .predicates import Predicate

__all__ = [
    "DepKind",
    "PredicateDepMode",
    "Edge",
    "write_dependencies",
    "read_dependencies",
    "anti_dependencies",
    "all_dependencies",
]


class DepKind(Enum):
    """Edge kinds of Figure 2, plus the start-dependency edges used by the
    start-ordered serialization graph of the Snapshot Isolation extension."""

    WW = "ww"  # directly write-depends
    WR = "wr"  # directly read-depends
    RW = "rw"  # directly anti-depends
    SO = "so"  # start-depends (SSG only; counts as a dependency edge)

    def __str__(self) -> str:
        return self.value


class PredicateDepMode(Enum):
    """Which match-changing transactions a predicate read depends on."""

    #: Only the latest match-changing version at or before the selected one
    #: (the paper's intent; minimal conflicts).
    LATEST = "latest"
    #: Every match-changing version at or before the selected one (the
    #: literal quantifier reading of Definition 3; strictly more edges).
    ALL = "all"


@dataclass(frozen=True, slots=True)
class Edge:
    """One direct conflict ``src --kind--> dst``.

    ``version`` is the version that *creates* the conflict: the version
    installed by ``dst`` for ``ww``/``rw`` edges, and the version read (or
    the match-changing version) for ``wr`` edges.  ``predicate`` is set on
    the predicate flavours; ``cursor`` marks item anti-dependencies whose
    read went through a cursor (used only by the PL-CS extension level).
    """

    src: int
    dst: int
    kind: DepKind
    obj: str = ""
    version: Optional[Version] = None
    predicate: Optional[Predicate] = None
    cursor: bool = False

    @property
    def via_predicate(self) -> bool:
        return self.predicate is not None

    def describe(self) -> str:
        """Human-readable one-line explanation, used in checker reports."""
        if self.kind is DepKind.SO:
            return (
                f"T{self.dst} start-depends on T{self.src}: T{self.src} "
                f"committed before T{self.dst} began"
            )
        if self.kind is DepKind.WW:
            return (
                f"T{self.dst} directly write-depends on T{self.src}: "
                f"T{self.dst} installs {self.version}, the next version of "
                f"{self.obj!r} after T{self.src}'s"
            )
        if self.kind is DepKind.WR:
            if self.via_predicate:
                return (
                    f"T{self.dst} directly predicate-read-depends on T{self.src}: "
                    f"{self.version} changed the matches of T{self.dst}'s read of "
                    f"predicate {self.predicate}"
                )
            return (
                f"T{self.dst} directly item-read-depends on T{self.src}: "
                f"T{self.dst} reads {self.version}"
            )
        if self.via_predicate:
            return (
                f"T{self.dst} directly predicate-anti-depends on T{self.src}: "
                f"T{self.dst} installs {self.version}, overwriting T{self.src}'s "
                f"read of predicate {self.predicate}"
            )
        return (
            f"T{self.dst} directly item-anti-depends on T{self.src}: "
            f"T{self.dst} installs {self.version}, the next version of "
            f"{self.obj!r} after the one T{self.src} read"
        )

    def __str__(self) -> str:
        tag = f"{self.kind}"
        if self.via_predicate:
            tag = f"p{tag}"
        return f"T{self.src} -{tag}-> T{self.dst}"


# ----------------------------------------------------------------------
# write dependencies (Definition 6)
# ----------------------------------------------------------------------


def write_dependencies(history: History) -> List[Edge]:
    """``T_i`` installs ``x_i`` and ``T_j`` installs ``x``'s next version."""
    edges: List[Edge] = []
    for obj, chain in history.version_order.items():
        for prev, nxt in zip(chain, chain[1:]):
            if prev.is_unborn:
                continue  # T_init is not a DSG node
            if prev.tid != nxt.tid:
                edges.append(Edge(prev.tid, nxt.tid, DepKind.WW, obj, nxt))
    return edges


# ----------------------------------------------------------------------
# read dependencies (Definitions 2 and 3)
# ----------------------------------------------------------------------


def read_dependencies(
    history: History,
    mode: PredicateDepMode = PredicateDepMode.LATEST,
) -> List[Edge]:
    """Item and predicate read-dependency edges.

    Item edges cover reads of any version created by another committed
    transaction — including intermediate versions, where information
    genuinely flowed; level classification is unaffected because G1b
    independently condemns intermediate reads wherever read edges matter.
    """
    edges: List[Edge] = []
    committed = history.committed_all
    seen = set()

    def add(edge: Edge) -> None:
        key = (edge.src, edge.dst, edge.kind, edge.obj, edge.version, edge.predicate)
        if key not in seen:
            seen.add(key)
            edges.append(edge)

    for _i, read in history.reads:
        writer = read.version.tid
        if read.tid not in committed or writer not in committed:
            continue
        if writer == read.tid or read.version.is_unborn:
            continue
        add(Edge(writer, read.tid, DepKind.WR, read.version.obj, read.version))

    for _i, pread in history.predicate_reads:
        if pread.tid not in committed:
            continue
        for edge in _predicate_read_edges(history, pread, mode):
            add(edge)
    return edges


def _predicate_read_edges(
    history: History, pread: PredicateRead, mode: PredicateDepMode
) -> List[Edge]:
    edges: List[Edge] = []
    for obj in history.vset_objects(pread):
        if not pread.predicate.covers(obj):
            continue
        selected = history.vset_version(pread, obj)
        idx = history.order_index.get(selected)
        if idx is None or idx == 0:
            # Unborn selection has no predecessors; an uninstalled selection
            # (version of an aborted/unfinished transaction) yields no edge —
            # G1a/G1b condemn the read itself.
            continue
        # Changer positions <= idx, via the memoized per-(predicate, object)
        # index instead of rescanning the chain per predicate read.
        positions = history.predicate_changers(pread.predicate, obj)
        cut = bisect_right(positions, idx)
        wanted = positions[:cut]
        if mode is PredicateDepMode.LATEST:
            wanted = wanted[-1:]
        chain = history.order_of(obj)
        for k in wanted:
            version = chain[k]
            if version.tid != pread.tid:
                edges.append(
                    Edge(
                        version.tid,
                        pread.tid,
                        DepKind.WR,
                        obj,
                        version,
                        predicate=pread.predicate,
                    )
                )
    return edges


# ----------------------------------------------------------------------
# anti-dependencies (Definitions 4 and 5)
# ----------------------------------------------------------------------


def anti_dependencies(history: History) -> List[Edge]:
    """Item and predicate anti-dependency edges."""
    edges: List[Edge] = []
    committed = history.committed_all
    # Edge key -> position in ``edges``, so merging the cursor flag of a
    # duplicate edge is a dict lookup instead of a linear rescan.
    seen: dict = {}

    def add(edge: Edge) -> None:
        key = (edge.src, edge.dst, edge.kind, edge.obj, edge.version, edge.predicate)
        at = seen.get(key)
        if at is None:
            seen[key] = len(edges)
            edges.append(edge)
        elif edge.cursor and not edges[at].cursor:
            # Keep the cursor flag if any contributing read was a cursor read.
            edges[at] = replace(edges[at], cursor=True)

    for _i, read in history.reads:
        if read.tid not in committed:
            continue
        nxt = history.next_installed(read.version)
        if nxt is not None and nxt.tid != read.tid:
            add(
                Edge(
                    read.tid,
                    nxt.tid,
                    DepKind.RW,
                    read.version.obj,
                    nxt,
                    cursor=read.cursor,
                )
            )

    for _i, pread in history.predicate_reads:
        if pread.tid not in committed:
            continue
        for obj in history.vset_objects(pread):
            if not pread.predicate.covers(obj):
                continue
            selected = history.vset_version(pread, obj)
            idx = history.order_index.get(selected)
            if idx is None:
                continue  # uninstalled selection; see read_dependencies
            chain = history.order_of(obj)
            positions = history.predicate_changers(pread.predicate, obj)
            for k in positions[bisect_right(positions, idx):]:
                later = chain[k]
                if later.tid == pread.tid:
                    continue
                add(
                    Edge(
                        pread.tid,
                        later.tid,
                        DepKind.RW,
                        obj,
                        later,
                        predicate=pread.predicate,
                    )
                )
    return edges


def all_dependencies(
    history: History,
    mode: PredicateDepMode = PredicateDepMode.LATEST,
) -> List[Edge]:
    """Every direct-conflict edge of the history (Figure 2's three rows)."""
    return (
        write_dependencies(history)
        + read_dependencies(history, mode)
        + anti_dependencies(history)
    )
