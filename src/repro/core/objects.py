"""Objects and versions of the database model (paper Section 4.1).

The database consists of *objects* (rows/tuples); each object has one or more
*versions* created by transaction writes.  A version is identified by the
triple ``(obj, tid, seq)``: ``x_{i:m}`` in the paper's notation is
``Version("x", i, m)``, the ``m``-th modification of object ``x`` by
transaction ``T_i``.  ``x_i`` — the *final* modification before ``T_i``
commits or aborts — is simply the version with the largest ``seq`` among
``T_i``'s writes to ``x`` in a given history.

Version *kinds* (unborn / visible / dead, Section 4.1) are properties of the
write event that created the version, so they live on
:class:`~repro.core.events.Write`; :class:`~repro.core.history.History`
exposes ``kind_of(version)`` for convenience.  The single unborn version
``x_init`` is modelled as a version written by the special initialisation
transaction :data:`INIT_TID`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Dict, Optional

__all__ = [
    "INIT_TID",
    "VersionKind",
    "Version",
    "relation_of",
    "DEFAULT_RELATION",
]

#: Transaction id of the conceptual initialisation transaction ``T_init``
#: (Section 4.1) which installs the unborn version of every object.  It is
#: negative so it can never collide with application transaction ids, which
#: are non-negative (the paper itself uses ``T_0`` as an ordinary application
#: transaction, e.g. in ``H_pred-read``).
INIT_TID: int = -1

#: Relation that objects belong to when no relation is stated explicitly.
#: Parsed paper histories use single-letter objects like ``x`` with no
#: relation prefix; they all live in this default relation.
DEFAULT_RELATION: str = "R"


class VersionKind(Enum):
    """The three kinds of object versions of Section 4.1."""

    UNBORN = "unborn"
    VISIBLE = "visible"
    DEAD = "dead"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True, order=True, slots=True)
class Version:
    """An immutable version identity ``x_{i:m}``.

    Parameters
    ----------
    obj:
        The object (tuple) identifier, e.g. ``"x"`` or ``"emp:3"``.
    tid:
        The id of the transaction that wrote this version.  ``INIT_TID``
        identifies the unborn version.
    seq:
        1-based index of this write among the writing transaction's
        successive modifications of ``obj`` (``m`` in ``x_{i:m}``).  The
        unborn version uses ``seq == 0``.
    """

    obj: str
    tid: int
    seq: int = 1
    # Versions key every hot dict in the checker, so the identity hash is
    # computed once per instance, not per probe.
    _hash: Optional[int] = field(
        default=None, init=False, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if not self.obj:
            raise ValueError("version object id must be non-empty")
        if self.tid == INIT_TID:
            if self.seq != 0:
                raise ValueError("the unborn version must have seq == 0")
        elif self.seq < 1:
            raise ValueError("application versions are numbered from 1")

    def __hash__(self) -> int:
        h = self._hash
        if h is None:
            h = hash((self.obj, self.tid, self.seq))
            object.__setattr__(self, "_hash", h)
        return h

    def __getstate__(self) -> Dict[str, Any]:
        # String hashes are salted per process: never ship a cached hash
        # across a pickle boundary (check_many's worker pools).
        return {"obj": self.obj, "tid": self.tid, "seq": self.seq}

    def __setstate__(self, state: Dict[str, Any]) -> None:
        for name, value in state.items():
            object.__setattr__(self, name, value)
        object.__setattr__(self, "_hash", None)

    @classmethod
    def unborn(cls, obj: str) -> "Version":
        """The initial (unborn) version ``x_init`` of ``obj``."""
        return cls(obj, INIT_TID, 0)

    @property
    def is_unborn(self) -> bool:
        return self.tid == INIT_TID

    @property
    def relation(self) -> str:
        return relation_of(self.obj)

    def label(self, *, explicit_seq: bool = False) -> str:
        """Render in the paper's notation: ``x1``, ``x1.2``, ``xinit``.
        Object names containing digits or punctuation are braced
        (``{emp:3}1``) so the token stays unambiguous."""
        obj = self.obj if self.obj.isalpha() or self.obj.replace("_", "").isalpha() else "{" + self.obj + "}"
        if self.is_unborn:
            return f"{obj}init"
        if explicit_seq or self.seq != 1:
            return f"{obj}{self.tid}.{self.seq}"
        return f"{obj}{self.tid}"

    def __str__(self) -> str:
        return self.label()

    def __repr__(self) -> str:
        return f"Version({self.label()})"


def relation_of(obj: str) -> str:
    """Return the relation an object belongs to.

    Objects may be namespaced as ``"relation:key"`` (the engine does this,
    e.g. ``"emp:3"``); bare names such as the paper's ``x`` and ``y`` belong
    to :data:`DEFAULT_RELATION`.  A tuple's relation is fixed for its whole
    lifetime (Section 4.3: "a tuple's relation is known in our model when the
    database is initialized").
    """
    rel, sep, _ = obj.partition(":")
    return rel if sep else DEFAULT_RELATION
