"""Tests for the PL-SS (strict serializability) extension level."""

import pytest

import repro
from repro.core import Analysis, parse_history
from repro.core.levels import IsolationLevel as L
from repro.core.phenomena import Phenomenon as G
from repro.engine import (
    Database,
    LockingScheduler,
    OptimisticScheduler,
    Simulator,
)
from repro.workloads import WorkloadConfig, random_programs


class TestGSS:
    def test_real_time_violation(self):
        """T2 begins after T1's commit but serializes before it."""
        h = parse_history("w1(x1, 1) c1 w2(x2, 2) c2 [x2 << x1]")
        a = Analysis(h)
        assert a.exhibits(G.G_SS)
        assert not a.exhibits(G.G2)  # plain serializability is fine

    def test_serial_history_clean(self):
        h = parse_history("w1(x1) c1 r2(x1) c2")
        assert not Analysis(h).exhibits(G.G_SS)

    def test_concurrent_reordering_allowed(self):
        """H_write-order: T2 overlaps T1, so serializing T2 first is fine."""
        from repro.core.canonical import H_WRITE_ORDER

        assert not Analysis(H_WRITE_ORDER.history).exhibits(G.G_SS)

    def test_g2_cycles_are_also_g_ss(self):
        from repro.workloads.anomalies import WRITE_SKEW

        a = Analysis(WRITE_SKEW.history)
        assert a.exhibits(G.G2)
        assert a.exhibits(G.G_SS)


class TestLevelPLSS:
    def test_proscriptions(self):
        assert L.PL_SS.proscribed == (G.G1, G.G_SS)

    def test_implies_pl3_not_si(self):
        assert L.PL_SS.implies(L.PL_3)
        assert not L.PL_SS.implies(L.PL_SI)
        assert not L.PL_3.implies(L.PL_SS)
        assert not L.PL_SI.implies(L.PL_SS)

    def test_aliases(self):
        assert L.from_string("strict serializable") is L.PL_SS
        assert L.from_string("PL-SS") is L.PL_SS

    def test_separation_from_pl3(self):
        h = parse_history("w1(x1, 1) c1 w2(x2, 2) c2 [x2 << x1]")
        assert repro.satisfies(h, L.PL_3).ok
        assert not repro.satisfies(h, L.PL_SS).ok

    def test_non_snapshot_read_is_strictly_serializable(self):
        """The PL-SI/PL-SS separation in the other direction."""
        from repro.workloads.anomalies import NON_SNAPSHOT_READ

        assert repro.satisfies(NON_SNAPSHOT_READ.history, L.PL_SS).ok
        assert not repro.satisfies(NON_SNAPSHOT_READ.history, L.PL_SI).ok

    def test_checker_extensions_include_pl_ss(self):
        rep = repro.check("w1(x1) c1", extensions=True)
        assert L.PL_SS in rep.verdicts


class TestEnginesAreStrict:
    """Strict 2PL and commit-order OCC serialize consistently with real
    time, so their histories provide PL-SS, not just PL-3."""

    @pytest.mark.parametrize(
        "factory",
        [lambda: LockingScheduler("serializable"), OptimisticScheduler],
        ids=["2PL", "OCC"],
    )
    def test_emitted_histories_are_pl_ss(self, factory):
        cfg = WorkloadConfig(
            n_programs=5, steps_per_program=3, n_keys=4,
            hot_fraction=0.7, write_fraction=0.6,
        )
        for seed in range(6):
            db = Database(factory())
            db.load(cfg.initial_state())
            Simulator(db, random_programs(cfg, seed=seed), seed=seed).run()
            verdict = repro.satisfies(db.history(), L.PL_SS)
            assert verdict.ok, verdict.describe()
