"""Dense-int interning for the array-backed hot path.

CPython's per-object costs — attribute dictionaries, isinstance dispatch,
dataclass ``__hash__`` recomputing a tuple hash per dict probe — dominate
phenomenon checking long before the graph algorithms do.  This module maps
the checker's identities onto dense integers once, so every hot structure
downstream (version chains, conflict-edge keys, event logs) is a list
indexed by int or a dict keyed by int:

* :class:`Interner` — bidirectional ids for objects and versions.  A
  :class:`~repro.core.objects.Version` is hashed exactly once, at intern
  time; afterwards its object, writer and sequence number are parallel
  list lookups (``ver_obj``/``ver_tid``/``ver_seq``).
* :class:`EventLog` — an array-of-struct mirror of an event sequence:
  parallel lists of ``(kind code, tid, version id, flag)`` that let one
  linear pass replace the per-event ``isinstance`` chains in
  :class:`~repro.core.history.History`'s index builders.

Ids are allocated in first-appearance order, so iterating ``objects`` or
``versions`` reproduces the deterministic orders the object-path code
derived by scanning events.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .events import Abort, Begin, Commit, Event, PredicateRead, Read, Write
from .objects import Version

__all__ = [
    "Interner",
    "EventLog",
    "K_BEGIN",
    "K_READ",
    "K_WRITE",
    "K_PREAD",
    "K_COMMIT",
    "K_ABORT",
    "ARRAY_CORE_DEFAULT",
]

#: Module default for ``History(array_core=...)``: the array-backed index
#: builders are on unless a caller (e.g. the equivalence suite) opts a
#: history out to exercise the legacy object path.
ARRAY_CORE_DEFAULT: bool = True

#: Event kind codes of :class:`EventLog` (dense, branch-friendly).
K_BEGIN, K_READ, K_WRITE, K_PREAD, K_COMMIT, K_ABORT = range(6)

_KIND_OF_TYPE = {
    Begin: K_BEGIN,
    Read: K_READ,
    Write: K_WRITE,
    PredicateRead: K_PREAD,
    Commit: K_COMMIT,
    Abort: K_ABORT,
}


class Interner:
    """Dense-int ids for objects and versions, allocated on first use."""

    __slots__ = (
        "obj_id",
        "objects",
        "version_id",
        "versions",
        "ver_obj",
        "ver_tid",
        "ver_seq",
    )

    def __init__(self) -> None:
        self.obj_id: Dict[str, int] = {}
        #: oid -> object name (first-appearance order).
        self.objects: List[str] = []
        self.version_id: Dict[Version, int] = {}
        #: vid -> the interned :class:`Version` (for materialisation).
        self.versions: List[Version] = []
        #: vid -> object id / writer tid / sequence number.
        self.ver_obj: List[int] = []
        self.ver_tid: List[int] = []
        self.ver_seq: List[int] = []

    def intern_object(self, obj: str) -> int:
        oid = self.obj_id.get(obj)
        if oid is None:
            oid = self.obj_id[obj] = len(self.objects)
            self.objects.append(obj)
        return oid

    def intern_version(self, version: Version) -> int:
        vid = self.version_id.get(version)
        if vid is None:
            vid = self.version_id[version] = len(self.versions)
            self.versions.append(version)
            self.ver_obj.append(self.intern_object(version.obj))
            self.ver_tid.append(version.tid)
            self.ver_seq.append(version.seq)
        return vid

    def __len__(self) -> int:
        return len(self.versions)


class EventLog:
    """Array-of-struct mirror of one event sequence.

    Parallel lists, one entry per event: ``kind`` (the ``K_*`` code),
    ``tid``, ``vid`` (the interned version for reads/writes, ``-1``
    otherwise) and ``flag`` (``cursor`` for reads, ``dead`` for writes).
    Predicate reads keep their version sets as objects — they are rare and
    structurally rich — but their vset objects are interned so the log
    covers the history's whole object universe in first-appearance order.
    """

    __slots__ = ("interner", "kind", "tid", "vid", "flag")

    def __init__(self, events: Tuple[Event, ...], interner: Optional[Interner] = None) -> None:
        self.interner = interner if interner is not None else Interner()
        n = len(events)
        self.kind: List[int] = [0] * n
        self.tid: List[int] = [0] * n
        self.vid: List[int] = [-1] * n
        self.flag: List[bool] = [False] * n
        kinds, tids, vids, flags = self.kind, self.tid, self.vid, self.flag
        intern_version = self.interner.intern_version
        intern_object = self.interner.intern_object
        kind_of = _KIND_OF_TYPE
        for i, ev in enumerate(events):
            t = type(ev)
            k = kind_of.get(t)
            if k is None:  # subclassed events: dispatch by base class
                for base, code in kind_of.items():
                    if isinstance(ev, base):
                        k = code
                        break
                else:
                    k = K_BEGIN
            kinds[i] = k
            tids[i] = ev.tid
            if k == K_READ:
                vids[i] = intern_version(ev.version)
                flags[i] = ev.cursor
            elif k == K_WRITE:
                vids[i] = intern_version(ev.version)
                flags[i] = ev.dead
            elif k == K_PREAD:
                # Objects before versions, so the interner's object order
                # matches the legacy first-appearance scan of vset.objects().
                for obj in ev.vset.objects():
                    intern_object(obj)
                for v in ev.vset.versions():
                    intern_version(v)

    def __len__(self) -> int:
        return len(self.kind)
