"""The Direct Serialization Graph (paper Definition 7).

``DSG(H)`` has one node per committed transaction of ``H`` (including the
paper's implicit setup transactions, cf. Figure 5's "T0 is not shown") and
one edge per direct conflict (:mod:`repro.core.conflicts`).  The class wraps
a :class:`networkx.MultiDiGraph` and provides the cycle searches the
phenomena need:

* a cycle using only a restricted set of edge flavours (G0 uses only ``ww``,
  G1c only dependency edges);
* a cycle containing *at least one* edge of a flavour (G2, G2-item);
* a cycle containing *exactly one* anti-dependency edge (the G-single
  phenomenon of the PL-2+ extension level).

All searches return a concrete :class:`Cycle` witness (the edge list), which
the checker renders into explanations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, List, Optional, Sequence, Tuple

import networkx as nx

from .conflicts import DepKind, Edge, PredicateDepMode, all_dependencies
from .history import History

__all__ = ["DSG", "Cycle", "EdgeFilter"]

#: Predicate over edges used to carve out subgraphs.
EdgeFilter = Callable[[Edge], bool]


def dependency_edge(edge: Edge) -> bool:
    """Definition 8's *dependency* edges: read- or write-dependencies."""
    return edge.kind in (DepKind.WW, DepKind.WR)


@dataclass(frozen=True)
class Cycle:
    """A directed cycle as a sequence of edges, each ending where the next
    begins (and the last ending at the first's source)."""

    edges: Tuple[Edge, ...]

    def __post_init__(self) -> None:
        if not self.edges:
            raise ValueError("a cycle has at least one edge")
        for a, b in zip(self.edges, self.edges[1:] + self.edges[:1]):
            if a.dst != b.src:
                raise ValueError(f"edges do not chain: {a} then {b}")

    @property
    def nodes(self) -> Tuple[int, ...]:
        return tuple(e.src for e in self.edges)

    def count(self, kind: DepKind, *, via_predicate: Optional[bool] = None) -> int:
        return sum(
            1
            for e in self.edges
            if e.kind is kind
            and (via_predicate is None or e.via_predicate == via_predicate)
        )

    def describe(self) -> str:
        path = " ".join(f"T{e.src} -{_tag(e)}->" for e in self.edges)
        return f"{path} T{self.edges[0].src}"

    def __str__(self) -> str:
        return self.describe()

    def __len__(self) -> int:
        return len(self.edges)


def _tag(edge: Edge) -> str:
    return ("p" if edge.via_predicate else "") + edge.kind.value


class DSG:
    """Direct serialization graph of a history.

    Parameters
    ----------
    history:
        The (validated) history.
    mode:
        Predicate-read-dependency quantification, see
        :class:`~repro.core.conflicts.PredicateDepMode`.
    extra_edges:
        Additional edges mixed into the graph.  The start-ordered
        serialization graph of the Snapshot Isolation extension passes
        start-dependency edges here.
    """

    def __init__(
        self,
        history: History,
        mode: PredicateDepMode = PredicateDepMode.LATEST,
        extra_edges: Iterable[Edge] = (),
    ):
        self.history = history
        self.edges: List[Edge] = list(all_dependencies(history, mode)) + list(extra_edges)
        self.graph = nx.MultiDiGraph()
        self.graph.add_nodes_from(history.committed_all)
        for e in self.edges:
            self.graph.add_edge(e.src, e.dst, edge=e)

    # ------------------------------------------------------------------
    # structure accessors
    # ------------------------------------------------------------------

    @property
    def nodes(self) -> Tuple[int, ...]:
        return tuple(sorted(self.graph.nodes))

    def edges_between(self, src: int, dst: int) -> List[Edge]:
        if not self.graph.has_edge(src, dst):
            return []
        return [d["edge"] for d in self.graph[src][dst].values()]

    def edges_of(self, kind: DepKind, *, via_predicate: Optional[bool] = None) -> List[Edge]:
        return [
            e
            for e in self.edges
            if e.kind is kind
            and (via_predicate is None or e.via_predicate == via_predicate)
        ]

    def to_dot(self) -> str:
        """GraphViz rendering (labels match the paper's figures)."""
        lines = ["digraph DSG {"]
        for n in self.nodes:
            lines.append(f'  T{n} [shape=circle, label="T{n}"];')
        for e in self.edges:
            style = "dashed" if e.kind is DepKind.RW else "solid"
            lines.append(
                f'  T{e.src} -> T{e.dst} [label="{_tag(e)}", style={style}];'
            )
        lines.append("}")
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # cycle searches
    # ------------------------------------------------------------------

    def _filtered(self, keep: EdgeFilter) -> nx.MultiDiGraph:
        g = nx.MultiDiGraph()
        g.add_nodes_from(self.graph.nodes)
        for e in self.edges:
            if keep(e):
                g.add_edge(e.src, e.dst, edge=e)
        return g

    def find_cycle(self, keep: EdgeFilter) -> Optional[Cycle]:
        """Any cycle using only edges passing ``keep``, or ``None``."""
        g = self._filtered(keep)
        for scc in nx.strongly_connected_components(g):
            if len(scc) < 2:
                continue
            sub = g.subgraph(scc)
            node_cycle = nx.find_cycle(sub)
            return _to_cycle(sub, [u for u, _v, _k in node_cycle])
        return None

    def find_cycle_with(
        self,
        special: EdgeFilter,
        keep: EdgeFilter,
        *,
        exactly_one: bool = False,
    ) -> Optional[Cycle]:
        """A cycle whose edges all pass ``keep`` and which contains at least
        one edge passing ``special``.

        With ``exactly_one=True``, the returned cycle contains exactly one
        ``special`` edge and the rest of the cycle avoids them (the G-single
        shape: one anti-dependency closed by dependency edges).
        """
        g = self._filtered(keep)
        if exactly_one:
            rest = self._filtered(lambda e: keep(e) and not special(e))
            for e in self.edges:
                if keep(e) and special(e):
                    path = _shortest_edge_path(rest, e.dst, e.src)
                    if path is not None:
                        return Cycle((e, *path))
            return None
        sccs = {
            node: i
            for i, scc in enumerate(nx.strongly_connected_components(g))
            for node in scc
        }
        for e in self.edges:
            if not (keep(e) and special(e)):
                continue
            if sccs.get(e.src) is not None and sccs[e.src] == sccs.get(e.dst):
                if e.src == e.dst:
                    continue
                path = _shortest_edge_path(g, e.dst, e.src)
                if path is not None:
                    return Cycle((e, *path))
        return None

    def find_cycles(
        self,
        keep: EdgeFilter,
        *,
        special: Optional[EdgeFilter] = None,
        limit: int = 10,
    ) -> List[Cycle]:
        """Up to ``limit`` distinct simple cycles whose edges all pass
        ``keep`` (and, if given, containing at least one ``special`` edge).

        Cycle enumeration is exponential in general; the ``limit`` bounds
        the work.  Distinctness is by node set, so parallel edges do not
        inflate the list.  Used for multi-witness reports; the phenomena
        themselves only need existence (:meth:`find_cycle`)."""
        g = self._filtered(keep)
        out: List[Cycle] = []
        seen_nodesets = set()
        for nodes in nx.simple_cycles(nx.DiGraph(g)):
            if len(out) >= limit:
                break
            key = frozenset(nodes)
            if key in seen_nodesets:
                continue
            cycle = _to_cycle_preferring(g, nodes, special)
            if special is not None and not any(
                special(e) for e in cycle.edges
            ):
                continue
            seen_nodesets.add(key)
            out.append(cycle)
        return out

    def directly_depends(self, ti: int, tj: int) -> bool:
        """Definition 8, first half: ``T_j`` directly write- or
        read-depends on ``T_i``."""
        return any(
            dependency_edge(e) for e in self.edges_between(ti, tj)
        )

    def depends(self, ti: int, tj: int) -> bool:
        """Definition 8: ``T_j`` depends on ``T_i`` — a path of one or more
        dependency (ww/wr) edges from ``T_i`` to ``T_j``."""
        if ti == tj or ti not in self.graph or tj not in self.graph:
            return False
        dep = self._filtered(dependency_edge)
        return nx.has_path(dep, ti, tj)

    def is_acyclic(self) -> bool:
        return nx.is_directed_acyclic_graph(self.graph)

    def topological_order(self) -> List[int]:
        """A serialization order of the committed transactions (only valid
        when the graph is acyclic)."""
        return list(nx.topological_sort(nx.DiGraph(self.graph)))


def _to_cycle_preferring(
    g: nx.MultiDiGraph, nodes: Sequence[int], special: Optional[EdgeFilter]
) -> Cycle:
    """Chain a node cycle into edges, preferring ``special`` edges among
    parallels so the witness justifies the phenomenon when possible."""
    edges = []
    for u, v in zip(nodes, list(nodes[1:]) + [nodes[0]]):
        parallel = [d["edge"] for d in g[u][v].values()]
        if special is not None:
            preferred = [e for e in parallel if special(e)]
            edges.append((preferred or parallel)[0])
        else:
            edges.append(parallel[0])
    return Cycle(tuple(edges))


def _to_cycle(g: nx.MultiDiGraph, nodes: Sequence[int]) -> Cycle:
    edges = []
    for u, v in zip(nodes, list(nodes[1:]) + [nodes[0]]):
        edges.append(next(iter(g[u][v].values()))["edge"])
    return Cycle(tuple(edges))


def _shortest_edge_path(
    g: nx.MultiDiGraph, src: int, dst: int
) -> Optional[Tuple[Edge, ...]]:
    """Shortest path from ``src`` to ``dst`` as edges, or ``None``; a
    zero-length path (``src == dst``) is the empty tuple."""
    if src == dst:
        return ()
    if src not in g or dst not in g:
        return None
    try:
        nodes = nx.shortest_path(g, src, dst)
    except nx.NetworkXNoPath:
        return None
    edges = []
    for u, v in zip(nodes, nodes[1:]):
        edges.append(next(iter(g[u][v].values()))["edge"])
    return tuple(edges)
