"""Orders/items workload: referential integrity under weak isolation.

A small shop: an ``item`` relation and an ``order`` relation, with the
application invariant *every committed order references an item that still
exists*.  Order placement checks the item before inserting; discontinuation
deletes the item together with its existing orders.  Run serializably, the
invariant holds by construction.  Run under snapshot isolation, the two
transactions form a real-world **write skew**: the placer checked the item
in its snapshot, the discontinuer swept orders in *its* snapshot, their
write sets are disjoint — both commit, and an orphan order survives,
referencing a dead item.

This is the predicate-flavoured sibling of the bank workload: the anomaly
is observed at the application level (:func:`orphan_orders`) and by the
checker (such histories fail PL-3 while still providing PL-SI), tying the
formalism to a concrete integrity bug, as the paper's Section 3 does with
``x + y = 10``.
"""

from __future__ import annotations

import random
from typing import Any, Dict, List, Optional

from ..core.history import History
from ..core.levels import IsolationLevel
from ..core.predicates import FieldPredicate, Predicate
from ..engine.programs import (
    Conditional,
    Delete,
    DeleteWhere,
    Insert,
    Program,
    Read,
)

__all__ = [
    "ITEM_RELATION",
    "ORDER_RELATION",
    "orders_for",
    "initial_shop",
    "place_order",
    "discontinue",
    "shop_programs",
    "orphan_orders",
]

ITEM_RELATION = "item"
ORDER_RELATION = "order"


def orders_for(item_obj: str) -> Predicate:
    """``SELECT * FROM order WHERE item = <item_obj>``."""
    return FieldPredicate(
        ORDER_RELATION, "item", "==", item_obj, name=f"orders-of-{item_obj.replace(':', '.')}"
    )


def initial_shop(n_items: int = 3, *, stock: int = 10) -> Dict[str, Any]:
    """``Database.load`` payload: ``n_items`` active items, no orders."""
    return {
        f"{ITEM_RELATION}:{i}": {"name": f"item{i}", "stock": stock}
        for i in range(1, n_items + 1)
    }


def place_order(
    name: str,
    item_obj: str,
    qty: int = 1,
    *,
    level: Optional[IsolationLevel] = None,
) -> Program:
    """Check the item exists, then insert an order referencing it."""
    return Program(
        name,
        [
            Read(item_obj, into="item"),
            Conditional(
                lambda regs: regs.get("item") is not None,
                Insert(
                    ORDER_RELATION,
                    {"item": item_obj, "qty": qty},
                    into="order",
                ),
            ),
        ],
        level=level,
    )


def discontinue(
    name: str,
    item_obj: str,
    *,
    level: Optional[IsolationLevel] = None,
) -> Program:
    """Remove an item and sweep its existing orders (keeping referential
    integrity — when the scheduler lets it).  The delete is guarded by an
    existence check, as a real application's ``DELETE ... WHERE id = ?``
    would be: deleting an already-deleted object would be a reincarnation,
    which the model forbids (a new incarnation is a distinct object)."""
    return Program(
        name,
        [
            Read(item_obj, into="_item"),
            DeleteWhere(orders_for(item_obj)),
            Conditional(
                lambda regs: regs.get("_item") is not None,
                Delete(item_obj),
            ),
        ],
        level=level,
    )


def shop_programs(
    *,
    n_items: int = 3,
    n_orders: int = 3,
    n_discontinues: int = 1,
    seed: int = 0,
    level: Optional[IsolationLevel] = None,
) -> List[Program]:
    """A seeded mix of order placements and discontinuations."""
    rng = random.Random(seed)
    programs: List[Program] = []
    for i in range(n_orders):
        item = f"{ITEM_RELATION}:{rng.randrange(1, n_items + 1)}"
        programs.append(place_order(f"order{i}", item, level=level))
    for i in range(n_discontinues):
        item = f"{ITEM_RELATION}:{rng.randrange(1, n_items + 1)}"
        programs.append(discontinue(f"discontinue{i}", item, level=level))
    rng.shuffle(programs)
    return programs


def orphan_orders(history: History) -> List[str]:
    """Committed orders whose referenced item no longer exists in the final
    committed state — the observable integrity violation."""
    state = history.committed_state()
    live_items = {
        obj for obj in state if obj.startswith(f"{ITEM_RELATION}:")
    }
    return sorted(
        obj
        for obj, row in state.items()
        if obj.startswith(f"{ORDER_RELATION}:")
        and isinstance(row, dict)
        and row.get("item") not in live_items
    )
