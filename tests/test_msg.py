"""Tests for mixed systems: MSG and mixing-correctness (repro.core.msg)."""


from repro.core import parse_history
from repro.core.conflicts import DepKind
from repro.core.levels import IsolationLevel as L
from repro.core.msg import MSG, ansi_projection, mixing_correct


class TestAnsiProjection:
    def test_chain_levels_unchanged(self):
        for level in (L.PL_1, L.PL_2, L.PL_2_99, L.PL_3):
            assert ansi_projection(level) is level

    def test_extensions_project_down(self):
        assert ansi_projection(L.PL_SI) is L.PL_2
        assert ansi_projection(L.PL_2PLUS) is L.PL_2
        assert ansi_projection(L.PL_CS) is L.PL_2


class TestEdgeRelevance:
    def test_ww_edges_always_kept(self):
        h = parse_history("b1@PL-1 w1(x1) c1 b2@PL-1 w2(x2) c2")
        msg = MSG(h)
        assert any(e.kind is DepKind.WW for e in msg.edges)

    def test_wr_into_pl1_dropped(self):
        h = parse_history("w1(x1) c1 b2@PL-1 r2(x1) c2")
        msg = MSG(h)
        assert not any(e.kind is DepKind.WR for e in msg.edges)

    def test_wr_into_pl2_kept(self):
        h = parse_history("w1(x1) c1 b2@PL-2 r2(x1) c2")
        msg = MSG(h)
        assert any(e.kind is DepKind.WR for e in msg.edges)

    def test_rw_out_of_pl2_dropped(self):
        h = parse_history("b1@PL-2 r1(x0) c1 w2(x2) c2")
        msg = MSG(h)
        assert not any(e.kind is DepKind.RW for e in msg.edges)

    def test_rw_out_of_pl3_kept(self):
        h = parse_history("b1@PL-3 r1(x0) c1 w2(x2) c2")
        msg = MSG(h)
        assert any(e.kind is DepKind.RW for e in msg.edges)

    def test_predicate_rw_needs_pl3_source(self):
        text = (
            "b1@{lvl} r1(P: x0*) c1 w2(y2) c2 [P matches: y2]"
        )
        rr = MSG(parse_history(text.format(lvl="PL-2.99")))
        assert not any(e.kind is DepKind.RW for e in rr.edges)
        ser = MSG(parse_history(text.format(lvl="PL-3")))
        assert any(e.kind is DepKind.RW for e in ser.edges)


class TestMixingCorrect:
    def test_paper_obligatory_example(self):
        """An anti-dependency from a PL-3 transaction to a PL-1 transaction
        is obligatory (Section 5.5): the cycle is caught even though T2 runs
        at PL-1."""
        h = parse_history(
            "b1@PL-3 b2@PL-1 r1(x0, 1) w2(x2, 2) w2(y2, 2) c2 r1(y2, 2) c1 "
            "[x0 << x2]"
        )
        report = mixing_correct(h)
        assert not report.ok
        assert report.cycle is not None

    def test_same_history_all_pl1_is_mixing_correct(self):
        """With both transactions at PL-1, the anti and read edges are not
        obligatory, so the same shape is mixing-correct."""
        h = parse_history(
            "b1@PL-1 b2@PL-1 r1(x0, 1) w2(x2, 2) w2(y2, 2) c2 r1(y2, 2) c1 "
            "[x0 << x2]"
        )
        assert mixing_correct(h).ok

    def test_dirty_read_at_pl2_rejected(self):
        h = parse_history("b2@PL-2 w1(x1) r2(x1) c2 a1")
        report = mixing_correct(h)
        assert not report.ok
        assert report.dirty_reads

    def test_dirty_read_at_pl1_tolerated(self):
        h = parse_history("b2@PL-1 w1(x1) r2(x1) c2 a1")
        assert mixing_correct(h).ok

    def test_describe(self):
        h = parse_history("w1(x1) c1")
        assert "mixing-correct" in mixing_correct(h).describe()


class TestMixingTheorem:
    """If a history is mixing-correct, each transaction gets its own level's
    guarantees — spot-checked: a PL-3 transaction in a mixing-correct
    history never observes a cycle involving its obligatory edges."""

    def test_serial_mixed_history(self):
        h = parse_history(
            "b1@PL-1 w1(x1) c1 b2@PL-2 r2(x1) w2(y2) c2 b3@PL-3 r3(y2) c3"
        )
        assert mixing_correct(h).ok
        msg = MSG(h)
        assert msg.is_acyclic()
        order = msg.topological_order()
        assert order.index(1) < order.index(2) < order.index(3)


class TestMixingTheoremFootnote:
    """The paper's footnote to the Mixing Theorem: mixing-correctness 'does
    not imply that a PL-3 transaction observes a consistent state since
    lower level transactions may have modified the database
    inconsistently'."""

    def test_pl3_reader_of_weakly_written_state(self):
        # PL-1 transactions T1/T2 leave x+y violating the invariant the
        # application maintains (each meant to keep x == y); the PL-3
        # reader T3 sees that state.  The history is mixing-correct — every
        # transaction got its own level's guarantees — yet T3 observed
        # garbage, exactly as the footnote warns.
        h = parse_history(
            "b1@PL-1 b2@PL-1 b3@PL-3 "
            "r1(x0, 0) r2(x0, 0) w1(x1, 1) w2(x2, 2) c1 c2 "
            "r3(x2, 2) r3(y0, 0) c3 "
            "[x0 << x1 << x2]"
        )
        report = mixing_correct(h)
        assert report.ok  # each transaction got its level's guarantees
        # ... but the PL-3 reader observed x=2, y=0 although the writers
        # intended x == y: the database itself was updated inconsistently.
        values = {e.version.obj: e.value for _i, e in h.reads if e.tid == 3}
        assert values == {"x": 2, "y": 0}
