"""Well-formedness validation for histories (paper Section 4.2).

A :class:`~repro.core.history.History` must satisfy:

**Event constraints**

* E1 — each transaction has exactly one commit or abort event, and it is the
  transaction's last event (Section 4.2: the history is *complete*).
* E2 — a ``Begin`` event, if present, is its transaction's first event.
* E3 — a read ``r_j(x_{i:m})`` is preceded by the write ``w_i(x_{i:m})``
  (unless the version is an implicit *setup version* whose writer has no
  events — the paper's unstated initial-state transactions).  The same holds
  for every non-unborn version selected in a predicate read's version set.
* E4 — read-your-own-writes: if ``w_i(x_{i:m})`` is followed by ``r_i(x_j)``
  with no intervening ``w_i(x_{i:n})``, then ``x_j = x_{i:m}``.
* E5 — item reads only observe *visible* versions (never unborn or dead).
  Version sets may select unborn/dead versions; those are ghost reads.
* E6 — a transaction's successive writes to an object are numbered
  ``1, 2, ...`` in event order (the paper's ``x_{i:1}, x_{i:2}, ...``).
* E7 — after a transaction writes a dead version of ``x`` (deletes it), that
  transaction performs no further operation on ``x`` ("a dead version ...
  cannot be used further").

**Version-order constraints**

* V1 — the order of each object starts with the unborn version (enforced by
  construction) and contains at most one dead version, which must be last.
* V2 — the order contains exactly the *final* versions of the committed
  transactions that wrote the object (one each), plus any setup versions;
  never versions of aborted or unfinished transactions, and never
  intermediate versions.

``validate_history`` raises :class:`~repro.exceptions.MalformedHistoryError`
or :class:`~repro.exceptions.VersionOrderError` with a message naming the
violated rule.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Set, Tuple

from ..exceptions import MalformedHistoryError, VersionOrderError
from .events import Abort, Begin, Commit, PredicateRead, Read, Write
from .objects import Version, VersionKind

if TYPE_CHECKING:  # pragma: no cover
    from .history import History

__all__ = ["validate_history"]


def validate_history(history: "History") -> None:
    """Validate all Section 4.2 constraints; raise on the first violation."""
    _check_event_structure(history)
    _check_reads(history)
    _check_write_numbering(history)
    _check_dead_usage(history)
    _check_version_order(history)


# ----------------------------------------------------------------------
# event constraints
# ----------------------------------------------------------------------


def _check_event_structure(history: "History") -> None:
    finished: Set[int] = set()
    started: Set[int] = set()
    seen: Set[int] = set()
    for ev in history.events:
        if ev.tid in finished:
            raise MalformedHistoryError(
                f"E1: event {ev} follows T{ev.tid}'s commit/abort"
            )
        if isinstance(ev, Begin):
            if ev.tid in seen:
                raise MalformedHistoryError(
                    f"E2: begin of T{ev.tid} is not its first event"
                )
            if ev.tid in started:
                raise MalformedHistoryError(f"E2: duplicate begin for T{ev.tid}")
            started.add(ev.tid)
        if isinstance(ev, (Commit, Abort)):
            finished.add(ev.tid)
        seen.add(ev.tid)
    unfinished = seen - finished
    if unfinished:
        pretty = ", ".join(f"T{t}" for t in sorted(unfinished))
        raise MalformedHistoryError(
            f"E1: history is not complete — {pretty} never commit or abort "
            "(pass auto_complete=True to append aborts)"
        )


def _check_reads(history: "History") -> None:
    written: Set[Version] = set()
    setup_ok = history.setup_versions
    for i, ev in enumerate(history.events):
        if isinstance(ev, Write):
            written.add(ev.version)
            continue
        if isinstance(ev, Read):
            v = ev.version
            if v.is_unborn:
                raise MalformedHistoryError(f"E5: read of unborn version at {ev}")
            if v not in written:
                if v not in setup_ok:
                    raise MalformedHistoryError(
                        f"E3: {ev} reads version {v} before it is written"
                    )
                if v.tid in history.aborted:
                    raise MalformedHistoryError(
                        f"E3: {ev} reads setup version {v} attributed to an "
                        "aborted transaction"
                    )
            elif history.kind_of(v) is VersionKind.DEAD:
                raise MalformedHistoryError(f"E5: read of dead version at {ev}")
        elif isinstance(ev, PredicateRead):
            for v in ev.vset.versions():
                if v.is_unborn or v in setup_ok:
                    continue
                if v not in written:
                    raise MalformedHistoryError(
                        f"E3: version set of {ev} selects {v} before it is written"
                    )
    _check_read_own_writes(history)


def _check_read_own_writes(history: "History") -> None:
    # Last own write per (tid, obj) as the scan proceeds.
    last_own: Dict[Tuple[int, str], Version] = {}
    for ev in history.events:
        if isinstance(ev, Write):
            last_own[(ev.tid, ev.version.obj)] = ev.version
        elif isinstance(ev, Read):
            own = last_own.get((ev.tid, ev.version.obj))
            if own is not None and ev.version != own:
                raise MalformedHistoryError(
                    f"E4: {ev} must observe the transaction's own last write {own}"
                )


def _check_write_numbering(history: "History") -> None:
    counters: Dict[Tuple[int, str], int] = {}
    for ev in history.events:
        if not isinstance(ev, Write):
            continue
        key = (ev.tid, ev.version.obj)
        expected = counters.get(key, 0) + 1
        if ev.version.seq != expected:
            raise MalformedHistoryError(
                f"E6: {ev} has sequence {ev.version.seq}, expected {expected} "
                f"(T{ev.tid}'s writes to {ev.version.obj!r} must be numbered in order)"
            )
        counters[key] = expected


def _check_dead_usage(history: "History") -> None:
    deleted: Set[Tuple[int, str]] = set()
    for ev in history.events:
        if isinstance(ev, Write):
            key = (ev.tid, ev.version.obj)
            if key in deleted:
                raise MalformedHistoryError(
                    f"E7: {ev} operates on {ev.version.obj!r} after T{ev.tid} deleted it"
                )
            if ev.dead:
                deleted.add(key)
        elif isinstance(ev, Read):
            if (ev.tid, ev.version.obj) in deleted:
                raise MalformedHistoryError(
                    f"E7: {ev} reads {ev.version.obj!r} after T{ev.tid} deleted it"
                )


# ----------------------------------------------------------------------
# version-order constraints
# ----------------------------------------------------------------------


def _check_version_order(history: "History") -> None:
    setup = history.setup_versions
    for obj, chain in history.version_order.items():
        assert chain[0].is_unborn  # by construction
        seen: Set[Version] = set()
        dead_seen = False
        for v in chain[1:]:
            if v in seen:
                raise VersionOrderError(f"V2: duplicate version {v} in order of {obj!r}")
            seen.add(v)
            if v in setup:
                if v.tid in history.aborted:
                    raise VersionOrderError(
                        f"V2: setup version {v} attributed to aborted T{v.tid}"
                    )
                kind = VersionKind.VISIBLE
            else:
                write = history.writes.get(v)
                if write is None:
                    raise VersionOrderError(
                        f"V2: version order of {obj!r} contains {v}, which is "
                        "never written"
                    )
                if v.tid not in history.committed:
                    raise VersionOrderError(
                        f"V2: version order of {obj!r} contains {v} of an "
                        "uncommitted or aborted transaction"
                    )
                if not history.is_final(v):
                    raise VersionOrderError(
                        f"V2: version order of {obj!r} contains intermediate "
                        f"version {v}; only final versions are installed"
                    )
                kind = VersionKind.DEAD if write.dead else VersionKind.VISIBLE
            if dead_seen:
                raise VersionOrderError(
                    f"V1: version order of {obj!r} places {v} after a dead version"
                )
            if kind is VersionKind.DEAD:
                dead_seen = True
        # every committed final write must be installed
        for tid in history.committed:
            final = history.final_version(obj, tid)
            if final is not None and final not in seen:
                raise VersionOrderError(
                    f"V2: committed version {final} missing from version order of {obj!r}"
                )
