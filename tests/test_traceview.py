"""Tests for repro.observability.traceview: latency percentiles, critical
paths, waterfalls, contention summaries, the Chrome trace-event export
round-trip, and the unified run report."""

import json

import pytest

from repro.observability import Tracer, read_trace, span_tree
from repro.observability.traceview import (
    RunReport,
    build_run_report,
    contention_summary,
    contention_table,
    critical_path,
    from_chrome_trace,
    latency_table,
    percentile,
    to_chrome_trace,
    verb_latencies,
    waterfall,
    write_chrome_trace,
)
from repro.service import NetworkConfig, run_stress

FAULTY = NetworkConfig(drop=0.05, duplicate=0.08, min_delay=1, max_delay=5)


def _traced_run(seed=3, **overrides):
    kwargs = dict(
        scheduler="locking",
        clients=3,
        txns_per_client=5,
        keys=4,
        seed=seed,
        network=FAULTY,
        crash_after_commits=6,
        restart_delay=30,
        tracer=Tracer(),
    )
    kwargs.update(overrides)
    return run_stress(**kwargs)


@pytest.fixture(scope="module")
def traced():
    return _traced_run()


class TestPercentile:
    def test_nearest_rank(self):
        values = list(range(1, 101))
        assert percentile(values, 50) == 50
        assert percentile(values, 95) == 95
        assert percentile(values, 99) == 99
        assert percentile(values, 100) == 100
        assert percentile(values, 0) == 1

    def test_single_value(self):
        assert percentile([7.0], 50) == 7.0
        assert percentile([7.0], 99) == 7.0

    def test_unsorted_input(self):
        assert percentile([3, 1, 2], 50) == 2

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            percentile([], 50)


class TestVerbLatencies:
    def test_service_verbs_present(self, traced):
        stats = verb_latencies(traced.tracer.records)
        assert set(stats) == {"begin", "read", "write", "commit"}
        for s in stats.values():
            assert s["count"] > 0
            assert s["p50"] <= s["p95"] <= s["p99"] <= s["max"]

    def test_durations_cover_retries(self, traced):
        """Request-span latency spans every attempt: with retries in the
        run, the max must exceed one round trip."""
        assert traced.client_stats["retries"] > 0
        stats = verb_latencies(traced.tracer.records)
        assert max(s["max"] for s in stats.values()) > 2 * FAULTY.max_delay

    def test_latency_table_renders(self, traced):
        table = latency_table(traced.tracer.records)
        assert table.splitlines()[0].split() == [
            "verb", "count", "p50", "p95", "p99", "mean", "max",
        ]
        assert any(line.startswith("commit") for line in table.splitlines())

    def test_empty_records(self):
        assert verb_latencies([]) == {}
        assert "(no request spans)" in latency_table([])


class TestCriticalPath:
    def test_descends_latest_finisher(self, traced):
        roots = span_tree(traced.tracer.records)
        hops = critical_path(roots[0])
        assert hops[0]["name"] == "stress.run"
        for above, below in zip(hops, hops[1:]):
            assert above["start"] <= below["start"] or above["end"] >= below["end"]
        # the path ends at a leaf that actually ends last among siblings
        assert hops[-1]["self"] >= 0

    def test_self_time_accounts_for_tail(self):
        tr = Tracer(clock=iter(range(100)).__next__)
        root = tr.span("root", stack=False)  # t=1
        child = tr.span("child", parent=root, stack=False)  # t=2
        child.end()  # t=3
        root.end()  # t=4
        hops = critical_path(span_tree(tr.records)[0])
        assert [h["name"] for h in hops] == ["root", "child"]
        assert hops[0]["self"] == pytest.approx(1.0)  # 4 - 3

    def test_leaf_only(self):
        tr = Tracer()
        tr.span("solo").end()
        hops = critical_path(span_tree(tr.records)[0])
        assert len(hops) == 1
        assert hops[0]["self"] == pytest.approx(hops[0]["duration"])


class TestWaterfall:
    def test_renders_all_spans(self, traced):
        art = waterfall(traced.tracer.records, max_lines=10_000)
        spans = [r for r in traced.tracer.records if r["kind"] == "span"]
        assert len(art.splitlines()) == len(spans) + 1  # + header
        assert "stress.run" in art

    def test_bars_and_events_marked(self):
        tr = Tracer(clock=iter(range(100)).__next__)
        with tr.span("work"):
            tr.event("tick")
        art = waterfall(tr.records)
        line = art.splitlines()[1]
        assert "=" in line and "*" in line

    def test_max_lines_truncates_with_note(self, traced):
        art = waterfall(traced.tracer.records, max_lines=5)
        assert "more spans (max_lines=5)" in art.splitlines()[-1]
        assert len(art.splitlines()) == 7  # header + 5 + note

    def test_empty(self):
        assert waterfall([]) == "(no closed spans)"


class TestContention:
    def test_hot_keys_surface(self, traced):
        rows = contention_summary(traced.tracer.records)
        assert rows, "faulty contended run must show contention"
        objs = {row["obj"] for row in rows}
        assert objs <= {f"k{i}" for i in range(4)}
        # sorted hottest first by wait ticks
        waits = [row["wait_ticks"] for row in rows]
        assert waits == sorted(waits, reverse=True)
        top = rows[0]
        assert top["busy_replies"] > 0
        assert top["lock_blocks"] > 0
        assert top["wait_ticks"] > 0

    def test_contention_table_renders(self, traced):
        table = contention_table(traced.tracer.records, top=3)
        assert len(table.splitlines()) <= 4
        assert table.splitlines()[0].split() == [
            "object", "busy", "blocks", "wait", "ticks",
        ]

    def test_no_contention(self):
        tr = Tracer()
        with tr.span("quiet"):
            pass
        assert contention_summary(tr.records) == []
        assert "(no contention observed)" in contention_table(tr.records)


class TestChromeTraceExport:
    def test_round_trips_exactly(self, traced, tmp_path):
        path = str(tmp_path / "trace.json")
        write_chrome_trace(traced.tracer.records, path)
        back = from_chrome_trace(json.load(open(path, encoding="utf-8")))
        assert list(back) == sorted(
            traced.tracer.records, key=lambda r: r["seq"]
        )
        assert back.skipped == 0

    def test_read_trace_detects_chrome_json(self, traced, tmp_path):
        """`read_trace` on the exported file reconstructs the records —
        the satellite acceptance: export round-trips through read_trace."""
        path = str(tmp_path / "trace.json")
        write_chrome_trace(traced.tracer.records, path)
        back = read_trace(path)
        assert list(back) == sorted(
            traced.tracer.records, key=lambda r: r["seq"]
        )

    def test_phase_vocabulary(self, traced):
        data = to_chrome_trace(traced.tracer.records)
        phases = {e["ph"] for e in data["traceEvents"]}
        assert phases == {"M", "X", "i"}
        lanes = {
            e["args"]["name"]
            for e in data["traceEvents"]
            if e["ph"] == "M"
        }
        assert any(lane.startswith("c0#") for lane in lanes)

    def test_foreign_events_counted_skipped(self):
        data = {
            "traceEvents": [
                {"name": "gc", "ph": "X", "ts": 0, "dur": 5, "args": {}},
            ]
        }
        back = from_chrome_trace(data)
        assert back == [] and back.skipped == 1


class TestRunReport:
    def test_sections_present(self, traced):
        report = build_run_report(result=traced, title="t")
        md = report.to_markdown()
        for section in (
            "## Fault schedule and configuration",
            "## Outcome",
            "## Logical latency by verb",
            "## Top contended objects",
            "## Phenomena",
            "## Trace",
        ):
            assert section in md
        assert "crash_after_commits" in md
        assert "committed transactions" in md

    def test_json_rendering_is_valid(self, traced):
        report = build_run_report(result=traced, title="t")
        data = json.loads(report.to_json())
        assert data["title"] == "t"
        assert data["summary"]["committed transactions"] == traced.committed
        assert data["trace_stats"]["traces"] > 0

    def test_identical_seeds_identical_reports(self):
        first = build_run_report(result=_traced_run(), title="t")
        second = build_run_report(result=_traced_run(), title="t")
        assert first.to_json() == second.to_json()
        assert first.to_markdown() == second.to_markdown()

    def test_report_from_records_only(self, traced):
        report = build_run_report(traced.tracer.records, title="records")
        assert report.summary == {}
        assert report.latencies
        md = report.to_markdown()
        assert "no request spans" not in md

    def test_phenomena_inline_with_provenance(self):
        """A weak scheduler's latched phenomena appear in the report with
        their witness cycles."""
        result = _traced_run(
            scheduler="mv-read-committed", keys=3, txns_per_client=6, seed=0
        )
        report = build_run_report(result=result, title="weak")
        assert report.phenomena
        names = {p["phenomenon"] for p in report.phenomena}
        assert names & {"G2", "G2-item", "G-single", "G1c"}
        md = report.to_markdown()
        assert "### G2" in md or "### G-single" in md
        cycled = [p for p in report.phenomena if p.get("cycle")]
        assert cycled, "witness cycles must ride along"

    def test_metrics_snapshot_folds_in(self, traced):
        from repro.observability import MetricsRegistry

        registry = MetricsRegistry()
        registry.counter("demo_total", "demo").inc()
        report = build_run_report(
            traced.tracer.records, metrics=registry, title="m"
        )
        assert "demo_total" in report.to_markdown()

    def test_empty_report_renders(self):
        report = RunReport(title="empty")
        md = report.to_markdown()
        assert "no request spans" in md
        assert "none latched." in md
