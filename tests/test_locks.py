"""Tests for the lock manager (repro.engine.locks)."""

import pytest

from repro.engine.locks import LockManager, LockMode
from repro.exceptions import WouldBlock


class TestItemLocks:
    def test_shared_reads(self):
        lm = LockManager()
        lm.acquire_item(1, "x", LockMode.READ)
        lm.acquire_item(2, "x", LockMode.READ)  # no conflict

    def test_write_blocks_read(self):
        lm = LockManager()
        lm.acquire_item(1, "x", LockMode.WRITE)
        with pytest.raises(WouldBlock) as exc:
            lm.acquire_item(2, "x", LockMode.READ)
        assert exc.value.holders == {1}

    def test_read_blocks_write(self):
        lm = LockManager()
        lm.acquire_item(1, "x", LockMode.READ)
        with pytest.raises(WouldBlock):
            lm.acquire_item(2, "x", LockMode.WRITE)

    def test_write_blocks_write(self):
        lm = LockManager()
        lm.acquire_item(1, "x", LockMode.WRITE)
        with pytest.raises(WouldBlock):
            lm.acquire_item(2, "x", LockMode.WRITE)

    def test_reacquire_is_idempotent(self):
        lm = LockManager()
        lm.acquire_item(1, "x", LockMode.WRITE)
        lm.acquire_item(1, "x", LockMode.WRITE)
        lm.acquire_item(1, "x", LockMode.READ)  # write covers read
        assert lm.holders_of("x") == {1: LockMode.WRITE}

    def test_upgrade_when_alone(self):
        lm = LockManager()
        lm.acquire_item(1, "x", LockMode.READ)
        lm.acquire_item(1, "x", LockMode.WRITE)
        assert lm.holders_of("x")[1] is LockMode.WRITE

    def test_upgrade_blocked_by_other_reader(self):
        lm = LockManager()
        lm.acquire_item(1, "x", LockMode.READ)
        lm.acquire_item(2, "x", LockMode.READ)
        with pytest.raises(WouldBlock):
            lm.acquire_item(1, "x", LockMode.WRITE)

    def test_release_unblocks(self):
        lm = LockManager()
        lm.acquire_item(1, "x", LockMode.WRITE)
        lm.release_item(1, "x")
        lm.acquire_item(2, "x", LockMode.WRITE)

    def test_short_read_release_preserves_write(self):
        lm = LockManager()
        lm.acquire_item(1, "x", LockMode.WRITE)
        lm.downgrade_or_release_read(1, "x")
        assert lm.holders_of("x")[1] is LockMode.WRITE


class TestRelationLocks:
    def test_relation_lock_blocks_writer(self):
        lm = LockManager()
        lm.acquire_relation(1, "emp")
        with pytest.raises(WouldBlock) as exc:
            lm.acquire_item(2, "emp:1", LockMode.WRITE)
        assert exc.value.holders == {1}

    def test_writer_blocks_relation_lock(self):
        lm = LockManager()
        lm.acquire_item(1, "emp:1", LockMode.WRITE)
        with pytest.raises(WouldBlock):
            lm.acquire_relation(2, "emp")

    def test_own_writes_do_not_block_own_predicate(self):
        lm = LockManager()
        lm.acquire_item(1, "emp:1", LockMode.WRITE)
        lm.acquire_relation(1, "emp")

    def test_relation_locks_are_shared(self):
        lm = LockManager()
        lm.acquire_relation(1, "emp")
        lm.acquire_relation(2, "emp")

    def test_item_reads_unaffected_by_relation_lock(self):
        lm = LockManager()
        lm.acquire_relation(1, "emp")
        lm.acquire_item(2, "emp:1", LockMode.READ)

    def test_release_relation(self):
        lm = LockManager()
        lm.acquire_relation(1, "emp")
        lm.release_relation(1, "emp")
        lm.acquire_item(2, "emp:1", LockMode.WRITE)

    def test_other_relation_untouched(self):
        lm = LockManager()
        lm.acquire_relation(1, "emp")
        lm.acquire_item(2, "dept:1", LockMode.WRITE)


class TestReleaseAll:
    def test_drops_everything(self):
        lm = LockManager()
        lm.acquire_item(1, "x", LockMode.WRITE)
        lm.acquire_item(1, "y", LockMode.READ)
        lm.acquire_relation(1, "emp")
        lm.release_all(1)
        lm.acquire_item(2, "x", LockMode.WRITE)
        lm.acquire_item(2, "y", LockMode.WRITE)
        lm.acquire_relation(2, "emp")

    def test_held_by(self):
        lm = LockManager()
        lm.acquire_item(1, "x", LockMode.WRITE)
        lm.acquire_item(1, "y", LockMode.READ)
        assert set(lm.held_by(1)) == {"x", "y"}

    def test_write_locked_index_maintained(self):
        lm = LockManager()
        lm.acquire_item(1, "emp:1", LockMode.WRITE)
        lm.release_all(1)
        lm.acquire_relation(2, "emp")  # no stale write-lock entry
