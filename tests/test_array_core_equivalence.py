"""Equivalence of the array-backed hot path with the legacy object path.

The array core (interned ids, flat event logs, batched incremental
ingestion) is a pure performance refactor: no verdict, witness, index or
ordering is allowed to change.  These properties pin that down three ways:

* ``History(array_core=True)`` builds exactly the same indexes and version
  orders as ``History(array_core=False)`` (the legacy isinstance-scan
  path kept for this suite);
* full ``check`` reports over both paths agree on every phenomenon,
  per-level verdict and witness set;
* the incremental analysis's batch path (``add_all``) replays exactly like
  the one-event-at-a-time path: same edges, same phenomena, same witness
  cycles — including histories with predicate reads and aborted
  transactions.
"""

from hypothesis import given, settings, strategies as st

from repro.checker import check
from repro.core.history import History
from repro.core.incremental import IncrementalAnalysis
from repro.core.levels import ANSI_CHAIN
from repro.core.phenomena import Phenomenon
from repro.observability.provenance import witness_cycle
from repro.workloads.generator import synthetic_history

#: Richer than test_properties' strategy on purpose: predicate reads and
#: aborts on by default, since those paths carry the trickiest state
#: (version sets, setup versions, G1a/G1b bookkeeping).
history_params = st.fixed_dictionaries(
    {
        "n_txns": st.integers(min_value=1, max_value=25),
        "n_objects": st.integers(min_value=1, max_value=8),
        "ops_per_txn": st.integers(min_value=1, max_value=6),
        "write_fraction": st.floats(min_value=0.0, max_value=1.0),
        "abort_fraction": st.floats(min_value=0.0, max_value=0.5),
        "stale_read_fraction": st.floats(min_value=0.0, max_value=1.0),
        "predicate_fraction": st.floats(min_value=0.0, max_value=0.5),
        "seed": st.integers(min_value=0, max_value=10_000),
    }
)


def both_paths(params):
    h = synthetic_history(**params)
    legacy = History(
        h.events, default_level=h.default_level, validate=False, array_core=False
    )
    arrayed = History(
        h.events, default_level=h.default_level, validate=False, array_core=True
    )
    return legacy, arrayed


# ----------------------------------------------------------------------
# History index equivalence
# ----------------------------------------------------------------------


@given(history_params)
@settings(max_examples=60, deadline=None)
def test_history_indexes_identical(params):
    legacy, arrayed = both_paths(params)
    assert arrayed.version_order == legacy.version_order
    assert arrayed.tids == legacy.tids
    assert arrayed.committed == legacy.committed
    assert arrayed.aborted == legacy.aborted
    assert arrayed.writes == legacy.writes
    assert arrayed.reads == legacy.reads
    assert arrayed.predicate_reads == legacy.predicate_reads
    assert arrayed._all_objects == legacy._all_objects
    assert arrayed.objects_by_relation == legacy.objects_by_relation
    assert arrayed._event_positions == legacy._event_positions
    assert arrayed.setup_versions == legacy.setup_versions
    assert arrayed.committed_all == legacy.committed_all


@given(history_params)
@settings(max_examples=30, deadline=None)
def test_check_reports_identical(params):
    legacy, arrayed = both_paths(params)
    r1 = check(legacy, extensions=True)
    r2 = check(arrayed, extensions=True)
    assert {
        (str(item.phenomenon), item.present) for item in r1.phenomena()
    } == {(str(item.phenomenon), item.present) for item in r2.phenomena()}
    assert {
        level: verdict.ok for level, verdict in r1.verdicts.items()
    } == {level: verdict.ok for level, verdict in r2.verdicts.items()}
    assert r1.strongest_level == r2.strongest_level


# ----------------------------------------------------------------------
# Incremental batch-path equivalence
# ----------------------------------------------------------------------

_CYCLE_PHENOMENA = (
    Phenomenon.G0,
    Phenomenon.G1C,
    Phenomenon.G2_ITEM,
    Phenomenon.G2,
)

#: The phenomena the incremental core maintains online (extension
#: phenomena like G-single require materialising the full history).
_INCREMENTAL_PHENOMENA = _CYCLE_PHENOMENA + (
    Phenomenon.G1A,
    Phenomenon.G1B,
    Phenomenon.G1,
)


@given(history_params)
@settings(max_examples=40, deadline=None)
def test_batch_add_all_matches_per_event_add(params):
    h = synthetic_history(**params)
    one = IncrementalAnalysis(order_mode="commit")
    for ev in h.events:
        one.add(ev)
    batch = IncrementalAnalysis(order_mode="commit").add_all(h.events)
    assert set(batch.edges) == set(one.edges)
    for ph in _INCREMENTAL_PHENOMENA:
        assert batch.exhibits(ph) == one.exhibits(ph), str(ph)
    assert batch.strongest_level() == one.strongest_level()
    for level in ANSI_CHAIN:
        assert batch.provides(level) == one.provides(level)


@given(history_params)
@settings(max_examples=30, deadline=None)
def test_incremental_matches_batch_checker(params):
    """The interned incremental core against the legacy object-path batch
    checker: identical phenomena and level verdicts."""
    h = synthetic_history(**params)
    legacy = History(
        h.events, default_level=h.default_level, validate=False, array_core=False
    )
    # order_mode="event" keys installs like the batch path's inferred
    # version order; "commit" is a different (also valid) order and may
    # legitimately disagree on cycle phenomena.
    report = check(legacy)
    inc = IncrementalAnalysis(order_mode="event").add_all(h.events)
    for item in report.phenomena():
        assert inc.exhibits(item.phenomenon) == item.present, str(item.phenomenon)
    for level in ANSI_CHAIN:
        assert inc.provides(level) == report.ok(level)


@given(history_params)
@settings(max_examples=25, deadline=None)
def test_batch_witness_cycles_are_valid(params):
    """Whenever the batch path latches a cycle phenomenon, its witness is a
    real chained cycle drawn from the analysis's own edges."""
    h = synthetic_history(**params)
    inc = IncrementalAnalysis(order_mode="commit").add_all(h.events)
    for ph in _CYCLE_PHENOMENA:
        if not inc.exhibits(ph):
            assert witness_cycle(inc, ph) is None
            continue
        cycle = witness_cycle(inc, ph)
        assert cycle, f"{ph} latched but no witness cycle"
        for edge, nxt in zip(cycle, cycle[1:] + cycle[:1]):
            assert edge.dst == nxt.src
        edge_set = set(inc.edges)
        for edge in cycle:
            assert edge in edge_set
