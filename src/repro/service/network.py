"""A deterministic simulated unreliable network (labrpc-style, no threads).

Messages between named endpoints suffer seeded faults — drops, duplicates,
variable delays (hence reordering) — and dynamic conditions: endpoints can
be taken down (server crashes) and the membership can be partitioned.
Everything runs in one process on a logical tick clock: delivery is a heap
ordered by ``(deliver_at, seq)``, so a given seed replays the exact same
fault schedule, message for message.

Two endpoint flavours:

* **handler** endpoints (servers): delivery invokes the handler with the
  payload; a returned reply payload is sent back through the network and
  suffers its own faults — a lost reply after an applied write is exactly
  the case client idempotency tokens exist for;
* **inbox** endpoints (clients): deliveries append to the inbox for the
  owner to drain.

Fault decisions are made at both ends, like labrpc: drops/duplicates at
send time, down/partition checks at delivery time — so a message in flight
when the server crashes is genuinely lost.

With a :class:`~repro.observability.Tracer` attached, every scheduled
message whose payload carries a trace context (``payload["trace"] =
{"id": trace_id, "span": span_id}``, attached by :class:`~repro.service.
client.Client`) becomes a ``net.msg`` span from send tick to delivery
tick, parented under the originating request span and closed with its
``fate`` (``delivered`` / ``lost-down`` / ``lost-partition`` /
``lost-crash``); drops at send time emit a ``net.drop`` event.  A metrics
registry's logical clock is kept in sync with the network tick clock, so
engine lock wait/hold durations are measured in ticks.
"""

from __future__ import annotations

import heapq
import random
from typing import Any, Callable, Dict, List, Optional, Tuple

#: Queue entries: ``(deliver_at, seq, src, dst, payload, span)`` — the heap
#: only ever compares ``(deliver_at, seq)`` since ``seq`` is unique.
_Message = Tuple[int, int, str, str, Dict[str, Any], Optional[object]]

from .config import NetworkConfig

__all__ = ["SimulatedNetwork"]

_Handler = Callable[[Dict[str, Any], str], Optional[Dict[str, Any]]]


class SimulatedNetwork:
    """Seeded fault-injecting message switch on a logical clock."""

    def __init__(
        self,
        config: Optional[NetworkConfig] = None,
        *,
        metrics: Optional[object] = None,
        tracer: Optional[object] = None,
    ) -> None:
        self.config = config or NetworkConfig()
        self.rng = random.Random(self.config.seed)
        self.now = 0
        self._seq = 0
        self._queue: List[_Message] = []
        self._handlers: Dict[str, _Handler] = {}
        self._inboxes: Dict[str, List[Tuple[str, Dict[str, Any]]]] = {}
        self._down: set[str] = set()
        self._group: Dict[str, int] = {}  # partition id per endpoint
        self.counters = {
            "sent": 0,
            "delivered": 0,
            "dropped": 0,
            "duplicated": 0,
            "lost_down": 0,
            "lost_partition": 0,
        }
        self.metrics = metrics
        self.tracer = tracer

    # ------------------------------------------------------------------
    # membership
    # ------------------------------------------------------------------

    def register_handler(self, name: str, handler: _Handler) -> None:
        self._handlers[name] = handler

    def register_inbox(self, name: str) -> List[Tuple[str, Dict[str, Any]]]:
        return self._inboxes.setdefault(name, [])

    def down(self, name: str) -> None:
        """Take an endpoint down; in-flight and future messages to it are
        lost until :meth:`up`."""
        self._down.add(name)

    def up(self, name: str) -> None:
        self._down.discard(name)

    def flush(self, name: str) -> int:
        """Drop queued messages to or from an endpoint *now* — a crash
        loses the process's buffers even if it restarts before the
        messages' delivery ticks would have come up."""
        keep: List[_Message] = []
        lost = 0
        for m in self._queue:
            if name in (m[2], m[3]):
                lost += 1
                if m[5] is not None:
                    m[5].end(fate="lost-crash")
            else:
                keep.append(m)
        if lost:
            # In place: delivery sweeps may hold a reference to the list.
            self._queue[:] = keep
            heapq.heapify(self._queue)
            self._count("lost_down", lost)
        return lost

    def is_up(self, name: str) -> bool:
        return name not in self._down

    def set_partition(self, *groups: tuple) -> None:
        """Split the network: endpoints in different groups cannot reach
        each other (unlisted endpoints stay mutually reachable in an
        implicit extra group)."""
        self._group = {
            name: i for i, group in enumerate(groups) for name in group
        }
        if self.tracer is not None:
            self.tracer.event(
                "net.partition", groups=[sorted(g) for g in groups]
            )

    def heal(self) -> None:
        self._group = {}
        if self.tracer is not None:
            self.tracer.event("net.heal")

    def reachable(self, src: str, dst: str) -> bool:
        return self._group.get(src, -1) == self._group.get(dst, -1)

    # ------------------------------------------------------------------
    # sending and delivery
    # ------------------------------------------------------------------

    def _count(self, kind: str, amount: int = 1) -> None:
        self.counters[kind] += amount
        if self.metrics is not None:
            self.metrics.counter(
                "service_messages_total", "service network messages by fate"
            ).inc(amount, kind=kind)

    def _msg_span(
        self, src: str, dst: str, payload: Dict[str, Any], duplicate: bool
    ) -> Optional[object]:
        if self.tracer is None:
            return None
        ctx = payload.get("trace")
        return self.tracer.span(
            "net.msg",
            stack=False,
            parent=ctx.get("span") if ctx else None,
            src=src,
            dst=dst,
            verb=payload.get("kind"),
            rid=payload.get("rid"),
            trace_id=ctx.get("id") if ctx else None,
            duplicate=duplicate,
        )

    def _schedule(
        self, src: str, dst: str, payload: Dict[str, Any], *,
        duplicate: bool = False,
    ) -> None:
        delay = (
            self.config.min_delay
            if self.config.min_delay == self.config.max_delay
            else self.rng.randint(self.config.min_delay, self.config.max_delay)
        )
        self._seq += 1
        heapq.heappush(
            self._queue,
            (
                self.now + delay,
                self._seq,
                src,
                dst,
                payload,
                self._msg_span(src, dst, payload, duplicate),
            ),
        )

    def send(self, src: str, dst: str, payload: Dict[str, Any]) -> None:
        """Send one message, subject to the fault schedule."""
        self._count("sent")
        if self.config.drop and self.rng.random() < self.config.drop:
            self._count("dropped")
            if self.tracer is not None:
                ctx = payload.get("trace")
                self.tracer.event(
                    "net.drop",
                    span=ctx.get("span") if ctx else None,
                    src=src,
                    dst=dst,
                    verb=payload.get("kind"),
                    rid=payload.get("rid"),
                    trace_id=ctx.get("id") if ctx else None,
                )
            return
        self._schedule(src, dst, payload)
        if self.config.duplicate and self.rng.random() < self.config.duplicate:
            self._count("duplicated")
            self._schedule(src, dst, payload, duplicate=True)

    def timer(
        self, dst: str, payload: Dict[str, Any], *, delay: int,
        src: Optional[str] = None, span: Optional[object] = None,
    ) -> None:
        """Schedule a fault-free delivery: ``payload`` reaches ``dst``
        exactly ``delay`` ticks from now, from ``src`` (itself when
        unset).

        Timers draw nothing from the fault RNG — no drop, duplicate or
        delay decisions — so arming one never perturbs the seeded fault
        schedule of real traffic.  The cluster's 2PC coordinator uses
        timers for retransmission deadlines; being self-addressed they
        survive partitions (an endpoint is always in its own group).
        The replication stream passes ``src=`` explicitly — a primary's
        batch to a backup is lossless and seeded-lag by construction, but
        still respects crashes and partitions because delivery checks
        both real endpoints.  ``span`` rides in the message's span slot
        and is closed with the delivery ``fate`` exactly like a traced
        ``net.msg`` (the replication stream's ``repl.ship`` spans)."""
        if delay < 1:
            raise ValueError("timer delay must be >= 1 tick")
        self._seq += 1
        heapq.heappush(
            self._queue,
            (self.now + delay, self._seq, src or dst, dst, payload, span),
        )

    def _sync_clock(self) -> None:
        """Keep an attached registry's logical clock on the network tick
        clock, so engine durations (lock wait/hold) are in ticks."""
        if self.metrics is not None and self.metrics.clock < self.now:
            self.metrics.clock = self.now

    def step(self) -> bool:
        """Deliver the next queued message (advancing the clock to its
        delivery tick); returns False when the queue is empty."""
        if not self._queue:
            return False
        deliver_at, _seq, src, dst, payload, span = heapq.heappop(self._queue)
        self.now = max(self.now, deliver_at)
        self._sync_clock()
        if dst in self._down or src in self._down:
            self._count("lost_down")
            if span is not None:
                span.end(fate="lost-down")
            return True
        if not self.reachable(src, dst):
            self._count("lost_partition")
            if span is not None:
                span.end(fate="lost-partition")
            return True
        self._count("delivered")
        if span is not None:
            span.end(fate="delivered")
        handler = self._handlers.get(dst)
        if handler is not None:
            reply = handler(payload, src)
            if reply is not None:
                self.send(dst, src, reply)
        else:
            self._inboxes.setdefault(dst, []).append((src, payload))
        return True

    @property
    def has_due(self) -> bool:
        """Whether a queued message is due at or before the current tick
        (the unpipelined driver uses this to finish a delivery batch)."""
        return bool(self._queue) and self._queue[0][0] <= self.now

    def drain_due(self) -> int:
        """Pipelined delivery: pop the next queued message (advancing the
        clock to its tick) and then every further message due by the new
        ``now`` — including zero-delay replies scheduled during the sweep —
        in one call.  Returns the number of messages processed (0 with an
        idle queue).

        The sweep processes exactly the messages that repeated
        :meth:`step` calls (continued while :attr:`has_due`) would, in the
        same heap order, drawing from the fault RNG in the same sequence —
        so pipelined and unpipelined drivers replay identical schedules.
        The win is batching: one network call delivers the whole tick's
        backlog to the server instead of bouncing through the driver loop
        once per message.
        """
        if not self._queue:
            return 0
        count = 0
        # Read ``self._queue`` afresh each iteration: a crash triggered
        # inside a delivery (``flush``) rebinds the queue list, and a
        # stale local alias would spin on the dropped snapshot forever.
        while self._queue and (count == 0 or self._queue[0][0] <= self.now):
            self.step()
            count += 1
        return count

    # ------------------------------------------------------------------
    # time
    # ------------------------------------------------------------------

    def advance(self, ticks: int = 1) -> None:
        """Let idle time pass (client backoffs with an empty queue)."""
        self.now += ticks
        self._sync_clock()

    def advance_past(self, t: int) -> None:
        """Jump the clock just past ``t``, delivering anything due."""
        while self._queue and self._queue[0][0] <= t:
            self.step()
        self.now = max(self.now, t + 1)
        self._sync_clock()

    def run_until(
        self, done: Callable[[], bool], *, max_ticks: int = 100_000
    ) -> bool:
        """Step deliveries until ``done()`` or the clock budget runs out;
        with an empty queue, time idles forward one tick at a time."""
        deadline = self.now + max_ticks
        while not done():
            if self.now > deadline:
                return False
            if not self.step():
                self.advance()
        return True

    @property
    def pending(self) -> int:
        return len(self._queue)

    def __repr__(self) -> str:
        return (
            f"<SimulatedNetwork t={self.now} pending={self.pending} "
            f"{self.counters}>"
        )
