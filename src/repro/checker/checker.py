"""The isolation checker: the library's user-facing entry points.

``check`` takes a history — either a :class:`~repro.core.history.History`
or the textual notation — and returns a :class:`CheckReport` with every
phenomenon, per-level verdicts, and the strongest level provided::

    >>> import repro
    >>> repro.check("w1(x1, 2) w2(x2, 5) w2(y2, 5) c2 w1(y1, 8) c1 "
    ...             "[x1 << x2, y2 << y1]").strongest_level is None
    True

``check_level`` answers the single-level question and ``classify`` (from
:mod:`repro.core.levels`) returns just the strongest ANSI level.
"""

from __future__ import annotations

from typing import Sequence, Union

from ..core.conflicts import PredicateDepMode
from ..core.history import History
from ..core.levels import ANSI_CHAIN, IsolationLevel, LevelVerdict, satisfies
from ..core.parser import parse_history
from ..core.phenomena import Analysis
from .report import CheckReport

__all__ = ["check", "check_level", "as_history"]

HistoryLike = Union[History, str]


def as_history(history: HistoryLike, *, auto_complete: bool = False) -> History:
    """Coerce textual notation to a validated :class:`History`."""
    if isinstance(history, History):
        return history
    return parse_history(history, auto_complete=auto_complete)


def check(
    history: HistoryLike,
    *,
    levels: Sequence[IsolationLevel] = ANSI_CHAIN,
    extensions: bool = False,
    mode: PredicateDepMode = PredicateDepMode.LATEST,
    auto_complete: bool = False,
) -> CheckReport:
    """Full analysis of a history.

    Parameters
    ----------
    history:
        A :class:`History` or its textual notation.
    levels:
        Levels to test (default: the ANSI chain of Figure 6).
    extensions:
        Also test the thesis extension levels PL-CS, PL-2+, PL-SI and PL-SS.
    mode:
        Predicate-read-dependency quantification.
    auto_complete:
        Append aborts for unfinished transactions before checking
        (Section 4.2's completion; only applies to textual input).
    """
    h = as_history(history, auto_complete=auto_complete)
    wanted = list(levels)
    if extensions:
        for extra in (
            IsolationLevel.PL_CS,
            IsolationLevel.PL_2PLUS,
            IsolationLevel.PL_SI,
            IsolationLevel.PL_SS,
        ):
            if extra not in wanted:
                wanted.append(extra)
    analysis = Analysis(h, mode)
    verdicts = {
        level: satisfies(h, level, analysis=analysis) for level in wanted
    }
    return CheckReport(h, analysis, verdicts, tuple(wanted))


def check_level(
    history: HistoryLike,
    level: Union[IsolationLevel, str],
    *,
    mode: PredicateDepMode = PredicateDepMode.LATEST,
    auto_complete: bool = False,
) -> LevelVerdict:
    """Does the history provide one level?  Accepts level names (including
    ANSI aliases such as ``"READ COMMITTED"``)."""
    if isinstance(level, str):
        level = IsolationLevel.from_string(level)
    h = as_history(history, auto_complete=auto_complete)
    return satisfies(h, level, mode=mode)
