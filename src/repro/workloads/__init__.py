"""Workloads: anomaly corpus, random generators, and the paper's scenarios."""

from .anomalies import ALL_ANOMALIES
from .arrivals import (
    ArrivalProcess,
    BurstyArrivals,
    DiurnalArrivals,
    PoissonArrivals,
    ZipfianKeys,
)
from .bank import (
    accounts,
    audit_program,
    audit_violations,
    bank_programs,
    conserved,
    initial_balances,
    transfer_program,
)
from .employees import (
    RELATION,
    SUM_OBJECT,
    dept_predicate,
    employee_programs,
    fire,
    hire,
    initial_employees,
    move_department,
    raise_sales,
    sum_salaries,
)
from .generator import WorkloadConfig, random_programs, synthetic_history
from .orders import (
    initial_shop,
    discontinue,
    orphan_orders,
    place_order,
    shop_programs,
)

__all__ = [
    "ALL_ANOMALIES",
    "ArrivalProcess",
    "BurstyArrivals",
    "DiurnalArrivals",
    "PoissonArrivals",
    "ZipfianKeys",
    "accounts",
    "audit_program",
    "audit_violations",
    "bank_programs",
    "conserved",
    "initial_balances",
    "transfer_program",
    "RELATION",
    "SUM_OBJECT",
    "dept_predicate",
    "employee_programs",
    "fire",
    "hire",
    "initial_employees",
    "move_department",
    "raise_sales",
    "sum_salaries",
    "WorkloadConfig",
    "random_programs",
    "synthetic_history",
    "initial_shop",
    "discontinue",
    "orphan_orders",
    "place_order",
    "shop_programs",
]
