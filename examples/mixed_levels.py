#!/usr/bin/env python3
"""Mixed isolation levels (Section 5.5): each transaction picks its level.

A reporting transaction runs at PL-3 (SERIALIZABLE), bulk updaters run at
PL-1 (READ UNCOMMITTED), and mid-tier transactions at PL-2 — all on one
locking database using Figure 1's standard combination of short and long
locks.  The script verifies Definition 9 (mixing-correctness) on the emitted
history and prints the mixed serialization graph, whose edges are exactly
the obligatory ones.

It then shows a *non*-mixing-correct history (hand-written): a PL-3
transaction whose read is overwritten by a PL-1 peer in a cycle — the
anti-dependency edge out of the PL-3 node is obligatory, so the MSG catches
the cycle even though one participant runs at the weakest level.

Run:  python examples/mixed_levels.py
"""

import repro
from repro.core.msg import MSG, mixing_correct
from repro.engine import Database, LockingScheduler, Simulator
from repro.workloads import WorkloadConfig, random_programs
from repro.core.levels import IsolationLevel as L


def engine_demo() -> None:
    cfg = WorkloadConfig(n_programs=6, steps_per_program=3, n_keys=4,
                         write_fraction=0.6, hot_fraction=0.6)
    programs = random_programs(cfg, seed=11)
    levels = [L.PL_1, L.PL_1, L.PL_2, L.PL_2, L.PL_3, L.PL_3]
    for program, level in zip(programs, levels):
        program.level = level

    db = Database(LockingScheduler("serializable"))
    db.load(cfg.initial_state())
    result = Simulator(db, programs, seed=11).run()
    history = db.history()

    print("=== engine-emitted mixed history ===")
    print(history)
    report = mixing_correct(history)
    print(f"\n{report.describe()}")

    msg = MSG(history)
    print("\nMSG edges (only the level-relevant / obligatory conflicts):")
    for edge in msg.edges:
        src_level = msg.levels[edge.src]
        dst_level = msg.levels[edge.dst]
        print(f"  {edge}   ({src_level} -> {dst_level})")
    order = msg.topological_order()
    print(f"\nserialization order: {', '.join(f'T{t}' for t in order)}")


def hand_written_violation() -> None:
    print("\n=== a history that is NOT mixing-correct ===")
    text = (
        "b1@PL-3 b2@PL-1 r1(x0, 1) w2(x2, 2) w2(y2, 2) c2 r1(y2, 2) c1 "
        "[x0 << x2]"
    )
    history = repro.parse_history(text)
    print(text)
    report = mixing_correct(history)
    print(report.describe())
    print(
        "\nT1 (PL-3) read x before T2 overwrote it, then read T2's y: the "
        "obligatory rw edge T1->T2 and the wr edge T2->T1 form an MSG "
        "cycle, so T1 is denied its serializability guarantee — the system "
        "must abort one of them."
    )


if __name__ == "__main__":
    engine_demo()
    hand_written_violation()
