"""Windowed telemetry on the logical clock: sliding stats, gauges, SLOs.

The snapshot-at-end :class:`~repro.observability.metrics.MetricsRegistry`
answers "what happened over the whole run"; a capacity operator needs
"what is happening *right now*" — rolling p99s, queue depths, and SLOs
that trip the moment a window goes bad.  This module provides that layer,
entirely on the **logical tick clock** so every number is deterministic
per seed:

* :class:`WindowedCounter` — event counts over a sliding window
  (arrivals, commits, sheds), with :meth:`~WindowedCounter.rate`;
* :class:`WindowedValues` — value samples over a sliding window with
  rolling :meth:`~WindowedValues.percentile` (p50/p95/p99 per verb);
* :class:`SLO` + :class:`SLOStatus` — declarative objectives
  (``p99 commit latency <= X ticks``, ``certified fraction >= Y``,
  ``queue depth <= Z``) with **latch-on-violation** semantics, like the
  phenomenon monitors: once a window violates the objective the status
  stays violated, recording the first violation tick and the worst value;
* :class:`WindowedTelemetry` — the aggregate a driver feeds: per-verb
  latency windows, commit certification outcomes, shed/arrival counters,
  queue-depth and certification-lag gauges, and a periodic
  :meth:`~WindowedTelemetry.sample` timeline for plots and reports.

Everything here is observational: attaching a :class:`WindowedTelemetry`
to a stress run must not change a single byte of the run's history,
journals or traces (pinned by the capacity tests).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, Dict, List, Optional, Tuple

__all__ = [
    "WindowedCounter",
    "WindowedValues",
    "SLO",
    "SLOStatus",
    "WindowedTelemetry",
]


def _percentile(ordered: List[float], q: float) -> float:
    """Nearest-rank percentile of a pre-sorted non-empty list."""
    if q <= 0:
        return ordered[0]
    rank = max(1, -(-len(ordered) * q // 100))  # ceil(n*q/100)
    return ordered[min(int(rank), len(ordered)) - 1]


class WindowedCounter:
    """Event counts over the trailing ``window`` ticks."""

    __slots__ = ("window", "_events", "_window_total", "total")

    def __init__(self, window: int) -> None:
        if window <= 0:
            raise ValueError("window must be >= 1")
        self.window = window
        self._events: Deque[Tuple[int, int]] = deque()
        self._window_total = 0
        #: Lifetime count (never pruned).
        self.total = 0

    def _prune(self, now: int) -> None:
        horizon = now - self.window
        events = self._events
        while events and events[0][0] <= horizon:
            self._window_total -= events.popleft()[1]

    def inc(self, now: int, amount: int = 1) -> None:
        self._events.append((now, amount))
        self._window_total += amount
        self.total += amount
        self._prune(now)

    def count(self, now: int) -> int:
        """Events inside ``(now - window, now]``."""
        self._prune(now)
        return self._window_total

    def rate(self, now: int) -> float:
        """Events per tick over the trailing window."""
        return self.count(now) / self.window


class WindowedValues:
    """Value samples over the trailing ``window`` ticks, with rolling
    percentiles (used for per-verb latency windows)."""

    __slots__ = ("window", "_samples", "total_count", "total_sum")

    def __init__(self, window: int) -> None:
        if window <= 0:
            raise ValueError("window must be >= 1")
        self.window = window
        self._samples: Deque[Tuple[int, float]] = deque()
        self.total_count = 0
        self.total_sum = 0.0

    def _prune(self, now: int) -> None:
        horizon = now - self.window
        samples = self._samples
        while samples and samples[0][0] <= horizon:
            samples.popleft()

    def observe(self, now: int, value: float) -> None:
        self._samples.append((now, value))
        self.total_count += 1
        self.total_sum += value
        self._prune(now)

    def count(self, now: int) -> int:
        self._prune(now)
        return len(self._samples)

    def values(self, now: int) -> List[float]:
        self._prune(now)
        return [v for _t, v in self._samples]

    def percentile(self, q: float, now: int) -> Optional[float]:
        """Rolling nearest-rank percentile; ``None`` with an empty window."""
        values = sorted(self.values(now))
        if not values:
            return None
        return _percentile(values, q)

    def stats(self, now: int) -> Dict[str, float]:
        """``{count, p50, p95, p99, mean, max}`` over the window (empty
        window gives ``count=0`` only)."""
        values = sorted(self.values(now))
        if not values:
            return {"count": 0}
        return {
            "count": len(values),
            "p50": _percentile(values, 50),
            "p95": _percentile(values, 95),
            "p99": _percentile(values, 99),
            "mean": sum(values) / len(values),
            "max": values[-1],
        }


#: SLO kinds and their comparison direction.
_SLO_KINDS = {
    "latency": "<=",  # rolling percentile of a verb's latency window
    "certified_fraction": ">=",  # certified commits / commits in window
    "queue_depth": "<=",  # current backlog gauge
    "certification_lag": "<=",  # current certification-lag gauge
    "in_doubt": "<=",  # cross-shard transactions mid-2PC (cluster runs)
}


@dataclass(frozen=True, kw_only=True)
class SLO:
    """One declarative objective over the windowed telemetry.

    ``kind`` selects the measured quantity:

    * ``"latency"`` — the rolling ``q``-th percentile of ``verb`` latency
      must stay ``<= threshold`` ticks;
    * ``"certified_fraction"`` — certified / committed in the window must
      stay ``>= threshold`` (evaluated only when the window saw commits);
    * ``"queue_depth"`` / ``"certification_lag"`` — the gauge must stay
      ``<= threshold``.
    """

    name: str
    kind: str
    threshold: float
    verb: str = "txn"
    q: float = 99.0

    def __post_init__(self) -> None:
        if self.kind not in _SLO_KINDS:
            raise ValueError(
                f"unknown SLO kind {self.kind!r}; one of {sorted(_SLO_KINDS)}"
            )
        if not (0 <= self.q <= 100):
            raise ValueError("q must be in [0, 100]")

    def describe(self) -> str:
        op = _SLO_KINDS[self.kind]
        if self.kind == "latency":
            measured = f"p{self.q:g} {self.verb} latency"
        else:
            measured = self.kind.replace("_", " ")
        return f"{measured} {op} {self.threshold:g}"


class SLOStatus:
    """Latch-on-violation evaluation state for one :class:`SLO`."""

    __slots__ = ("slo", "violated_at", "worst", "last", "evaluations")

    def __init__(self, slo: SLO) -> None:
        self.slo = slo
        #: Tick of the first violating sample (None while the SLO holds).
        self.violated_at: Optional[int] = None
        #: Worst value observed across all evaluations.
        self.worst: Optional[float] = None
        #: Most recent measured value.
        self.last: Optional[float] = None
        self.evaluations = 0

    @property
    def ok(self) -> bool:
        return self.violated_at is None

    def observe(self, value: Optional[float], now: int) -> None:
        if value is None:  # empty window: nothing to judge
            return
        self.evaluations += 1
        self.last = value
        direction = _SLO_KINDS[self.slo.kind]
        if direction == "<=":
            violated = value > self.slo.threshold
            if self.worst is None or value > self.worst:
                self.worst = value
        else:
            violated = value < self.slo.threshold
            if self.worst is None or value < self.worst:
                self.worst = value
        if violated and self.violated_at is None:
            self.violated_at = now

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.slo.name,
            "objective": self.slo.describe(),
            "ok": self.ok,
            "violated_at": self.violated_at,
            "worst": self.worst,
            "last": self.last,
            "evaluations": self.evaluations,
        }


class WindowedTelemetry:
    """The live telemetry a stress/capacity driver feeds.

    ``window`` is the sliding-window width and ``sample_every`` the
    timeline cadence, both in logical ticks.  The driver calls the
    ``observe_*`` hooks as things happen and :meth:`maybe_sample` from its
    main loop; SLOs are evaluated at sample points against the current
    windows, with latch-on-violation semantics.
    """

    def __init__(
        self,
        *,
        window: int = 500,
        sample_every: int = 100,
        slos: Tuple[SLO, ...] = (),
    ) -> None:
        if sample_every <= 0:
            raise ValueError("sample_every must be >= 1")
        self.window = window
        self.sample_every = sample_every
        self.arrivals = WindowedCounter(window)
        self.commits = WindowedCounter(window)
        self.certified = WindowedCounter(window)
        self.aborts = WindowedCounter(window)
        self.sheds = WindowedCounter(window)
        #: Per-verb latency windows (client-observed ticks); the whole
        #: transaction rides under verb ``"txn"``.
        self.latencies: Dict[str, WindowedValues] = {}
        self.queue_depth = 0
        self.max_queue_depth = 0
        self.certification_lag = 0
        self.max_certification_lag = 0
        #: Cluster gauges (fed only by cluster runs; ``None`` keeps every
        #: single-server artifact — timeline rows, snapshots — unchanged).
        self.in_doubt: Optional[int] = None
        self.max_in_doubt = 0
        self.shard_certification_lag: Optional[Dict[int, int]] = None
        self.max_shard_certification_lag: Dict[int, int] = {}
        self.shard_queue_depth: Optional[Dict[int, int]] = None
        self.max_shard_queue_depth: Dict[int, int] = {}
        self.slo_status: List[SLOStatus] = [SLOStatus(s) for s in slos]
        self.timeline: List[Dict[str, Any]] = []
        self._next_sample = 0

    # -- observation hooks ---------------------------------------------

    def observe_arrival(self, now: int) -> None:
        self.arrivals.inc(now)

    def observe_latency(self, verb: str, ticks: float, now: int) -> None:
        window = self.latencies.get(verb)
        if window is None:
            window = self.latencies[verb] = WindowedValues(self.window)
        window.observe(now, ticks)

    def observe_commit(self, certified: Optional[bool], now: int) -> None:
        self.commits.inc(now)
        if certified is not False:
            self.certified.inc(now)

    def observe_abort(self, now: int) -> None:
        self.aborts.inc(now)

    def observe_shed(self, now: int) -> None:
        self.sheds.inc(now)

    def set_gauges(
        self,
        *,
        queue_depth: Optional[int] = None,
        certification_lag: Optional[int] = None,
    ) -> None:
        if queue_depth is not None:
            self.queue_depth = queue_depth
            self.max_queue_depth = max(self.max_queue_depth, queue_depth)
        if certification_lag is not None:
            self.certification_lag = certification_lag
            self.max_certification_lag = max(
                self.max_certification_lag, certification_lag
            )

    def set_cluster_gauges(
        self,
        *,
        in_doubt: Optional[int] = None,
        shard_certification_lag: Optional[Dict[int, int]] = None,
        shard_queue_depth: Optional[Dict[int, int]] = None,
    ) -> None:
        """Cluster-run gauges: in-flight 2PC count and per-shard backlog
        dicts (shard index → value).  Feeding any of these switches the
        timeline rows and snapshot into cluster mode; single-server runs
        never call this, so their artifacts are byte-identical to before
        this method existed."""
        if in_doubt is not None:
            self.in_doubt = in_doubt
            self.max_in_doubt = max(self.max_in_doubt, in_doubt)
        if shard_certification_lag is not None:
            self.shard_certification_lag = dict(shard_certification_lag)
            for shard, lag in shard_certification_lag.items():
                self.max_shard_certification_lag[shard] = max(
                    self.max_shard_certification_lag.get(shard, 0), lag
                )
        if shard_queue_depth is not None:
            self.shard_queue_depth = dict(shard_queue_depth)
            for shard, depth in shard_queue_depth.items():
                self.max_shard_queue_depth[shard] = max(
                    self.max_shard_queue_depth.get(shard, 0), depth
                )

    # -- rolling views --------------------------------------------------

    def rolling(self, verb: str, now: int) -> Dict[str, float]:
        """Rolling latency stats for one verb (``{"count": 0}`` if unseen)."""
        window = self.latencies.get(verb)
        return window.stats(now) if window is not None else {"count": 0}

    def certified_fraction(self, now: int) -> Optional[float]:
        commits = self.commits.count(now)
        if not commits:
            return None
        return self.certified.count(now) / commits

    # -- sampling & SLO evaluation --------------------------------------

    def _slo_value(self, status: SLOStatus, now: int) -> Optional[float]:
        slo = status.slo
        if slo.kind == "latency":
            window = self.latencies.get(slo.verb)
            return window.percentile(slo.q, now) if window else None
        if slo.kind == "certified_fraction":
            return self.certified_fraction(now)
        if slo.kind == "queue_depth":
            return float(self.queue_depth)
        if slo.kind == "in_doubt":
            return float(self.in_doubt) if self.in_doubt is not None else None
        return float(self.certification_lag)  # certification_lag

    def sample(self, now: int) -> Dict[str, Any]:
        """Record one timeline row and evaluate every SLO at ``now``."""
        row: Dict[str, Any] = {
            "t": now,
            "arrival_rate": self.arrivals.rate(now),
            "commit_rate": self.commits.rate(now),
            "queue_depth": self.queue_depth,
            "certification_lag": self.certification_lag,
            "shed": self.sheds.count(now),
        }
        if self.in_doubt is not None:
            row["in_doubt"] = self.in_doubt
        if self.shard_certification_lag is not None:
            row["shard_certification_lag"] = dict(self.shard_certification_lag)
        if self.shard_queue_depth is not None:
            row["shard_queue_depth"] = dict(self.shard_queue_depth)
        txn = self.rolling("txn", now)
        if txn["count"]:
            row["txn_p50"] = txn["p50"]
            row["txn_p99"] = txn["p99"]
        fraction = self.certified_fraction(now)
        if fraction is not None:
            row["certified_fraction"] = fraction
        for status in self.slo_status:
            status.observe(self._slo_value(status, now), now)
        self.timeline.append(row)
        return row

    def maybe_sample(self, now: int) -> None:
        """Sample when the cadence says so (drivers call this every loop;
        cheap no-op between sample points)."""
        if now >= self._next_sample:
            self.sample(now)
            self._next_sample = now + self.sample_every

    # -- reporting -------------------------------------------------------

    @property
    def all_slos_ok(self) -> bool:
        return all(status.ok for status in self.slo_status)

    def slo_report(self) -> List[Dict[str, Any]]:
        """Per-SLO verdicts as JSON-ready dicts."""
        return [status.to_dict() for status in self.slo_status]

    def snapshot(self, now: int) -> Dict[str, Any]:
        """One JSON-ready summary of everything windowed, as of ``now``."""
        return {
            "now": now,
            "window": self.window,
            "arrivals_total": self.arrivals.total,
            "commits_total": self.commits.total,
            "aborts_total": self.aborts.total,
            "sheds_total": self.sheds.total,
            "max_queue_depth": self.max_queue_depth,
            "max_certification_lag": self.max_certification_lag,
            **(
                {
                    "max_in_doubt": self.max_in_doubt,
                    "max_shard_certification_lag": dict(
                        self.max_shard_certification_lag
                    ),
                    "max_shard_queue_depth": dict(self.max_shard_queue_depth),
                }
                if self.in_doubt is not None
                or self.shard_certification_lag is not None
                else {}
            ),
            "rolling": {
                verb: self.rolling(verb, now) for verb in sorted(self.latencies)
            },
            "slos": self.slo_report(),
        }
