"""Permissiveness analysis: the Section 3 experiment, quantified.

The paper argues that the preventative definitions are "overly restrictive
since they rule out optimistic and multi-version implementations": every
history such implementations emit is *legal* at the requested PL level, yet
the P-phenomena reject many of them.  This module measures that gap.

For a scheduler and workload, :func:`compare` runs ``n_seeds`` simulations
and classifies each emitted history twice — once with the generalized
G-phenomena and once with the preventative P-phenomena — at a target ANSI
level.  The output rates make the paper's qualitative claim quantitative:

* locking schedulers: both checkers accept everything (locking is exactly
  what the P-phenomena describe);
* OCC / SI / MV-RC: the generalized checker accepts everything the scheme
  guarantees, while the preventative checker rejects most runs (any
  concurrent conflicting interleaving trips P0–P2).

The theory also guarantees the inclusion ``preventative-accepted ⊆
generalized-accepted`` at every level; :func:`compare` asserts it on every
run (a live soundness check for both implementations).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Sequence

from ..baseline.preventative import PreventativeAnalysis, preventative_satisfies
from ..core.history import History
from ..core.levels import IsolationLevel, satisfies
from ..core.phenomena import Analysis
from ..engine.database import Database
from ..engine.programs import Program
from ..engine.scheduler import Scheduler
from ..engine.simulator import Simulator

__all__ = ["PermissivenessResult", "compare"]


@dataclass
class PermissivenessResult:
    """Acceptance statistics for one scheduler at one level."""

    scheduler: str
    level: IsolationLevel
    runs: int
    generalized_accepted: int
    preventative_accepted: int
    #: runs accepted by the generalized definitions but rejected by the
    #: preventative ones — the histories the paper says ANSI must not lose.
    gap: int
    example_gap_history: Optional[History] = None

    @property
    def generalized_rate(self) -> float:
        return self.generalized_accepted / self.runs if self.runs else 0.0

    @property
    def preventative_rate(self) -> float:
        return self.preventative_accepted / self.runs if self.runs else 0.0

    def describe(self) -> str:
        return (
            f"{self.scheduler:24} @ {self.level}: generalized "
            f"{self.generalized_accepted}/{self.runs} "
            f"({self.generalized_rate:.0%}), preventative "
            f"{self.preventative_accepted}/{self.runs} "
            f"({self.preventative_rate:.0%}), gap {self.gap}"
        )


def compare(
    scheduler_factory: Callable[[], Scheduler],
    programs_factory: Callable[[int], Sequence[Program]],
    initial_state: Dict[str, object],
    *,
    level: IsolationLevel = IsolationLevel.PL_3,
    n_seeds: int = 20,
    max_retries: int = 20,
) -> PermissivenessResult:
    """Run ``n_seeds`` simulations and compare the two checkers at ``level``.

    ``programs_factory(seed)`` builds the programs for one run, so workloads
    vary per seed.  Raises ``AssertionError`` if some run is
    preventative-accepted but generalized-rejected — that would falsify the
    containment the paper proves.
    """
    gen_ok = 0
    prev_ok = 0
    gap = 0
    example: Optional[History] = None
    scheduler_name = scheduler_factory().name
    for seed in range(n_seeds):
        scheduler = scheduler_factory()
        # Factories are caller-supplied and may hand-build schedulers; that
        # is this API's contract, so don't surface the Database deprecation.
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            db = Database(scheduler)
        db.load(initial_state)
        Simulator(
            db, programs_factory(seed), seed=seed, max_retries=max_retries
        ).run()
        history = db.history()
        g = satisfies(history, level, analysis=Analysis(history)).ok
        p = preventative_satisfies(
            history, level, analysis=PreventativeAnalysis(history)
        )
        if p and not g:
            raise AssertionError(
                "containment violated: preventative accepted a history the "
                f"generalized definitions reject (seed {seed})\n{history}"
            )
        gen_ok += g
        prev_ok += p
        if g and not p:
            gap += 1
            if example is None:
                example = history
    return PermissivenessResult(
        scheduler_name, level, n_seeds, gen_ok, prev_ok, gap, example
    )
