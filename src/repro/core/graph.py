"""Lightweight directed multigraph algorithms for DSG analysis.

The phenomenon detectors only ever need four graph questions — strongly
connected components, a concrete cycle inside a component, a shortest edge
path, and a topological order.  Answering them on a plain adjacency dict is
5–10x faster than building :class:`networkx.MultiDiGraph` instances per
query (the seed profile spent most of ``repro.check`` inside networkx's
``add_edge``), so :mod:`repro.core.dsg` runs its hot paths here and keeps
networkx only for exhaustive simple-cycle enumeration in witness reports.

All functions take ``adj``, a mapping ``src -> list[Edge]`` over the edges
of interest (edges carry their own ``src``/``dst``), plus an optional
``nodes`` iterable for isolated vertices.  Nothing here knows about
histories; :class:`~repro.core.conflicts.Edge` is only required to expose
``src`` and ``dst``.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, TypeVar

E = TypeVar("E")  # edge type: anything with .src and .dst

Adjacency = Dict[int, List[E]]

__all__ = [
    "adjacency",
    "strongly_connected_components",
    "component_index",
    "cycle_in_component",
    "shortest_edge_path",
    "has_path",
    "topological_order",
]


def adjacency(edges: Iterable[E]) -> Adjacency:
    """Build ``src -> [edges]`` from an edge iterable."""
    adj: Adjacency = {}
    for e in edges:
        adj.setdefault(e.src, []).append(e)
    return adj


def strongly_connected_components(
    adj: Adjacency, nodes: Iterable[int] = ()
) -> List[List[int]]:
    """Tarjan's algorithm, iteratively (histories can exceed the recursion
    limit).  Components come out in reverse topological order; singleton
    components are included for every node seen in ``adj`` or ``nodes``."""
    index: Dict[int, int] = {}
    lowlink: Dict[int, int] = {}
    on_stack: Dict[int, bool] = {}
    stack: List[int] = []
    counter = 0
    components: List[List[int]] = []

    all_nodes: Dict[int, None] = {}
    for n in nodes:
        all_nodes.setdefault(n, None)
    for src, edges in adj.items():
        all_nodes.setdefault(src, None)
        for e in edges:
            all_nodes.setdefault(e.dst, None)

    for root in all_nodes:
        if root in index:
            continue
        # Each work item is (node, iterator position) simulated with an
        # explicit successor cursor.
        work: List[Tuple[int, int]] = [(root, 0)]
        while work:
            node, cursor = work.pop()
            if cursor == 0:
                index[node] = lowlink[node] = counter
                counter += 1
                stack.append(node)
                on_stack[node] = True
            succs = adj.get(node, ())
            advanced = False
            while cursor < len(succs):
                nxt = succs[cursor].dst
                cursor += 1
                if nxt not in index:
                    work.append((node, cursor))
                    work.append((nxt, 0))
                    advanced = True
                    break
                if on_stack.get(nxt):
                    if index[nxt] < lowlink[node]:
                        lowlink[node] = index[nxt]
            if advanced:
                continue
            # node is finished; close its component if it is a root.
            if lowlink[node] == index[node]:
                comp = []
                while True:
                    member = stack.pop()
                    on_stack[member] = False
                    comp.append(member)
                    if member == node:
                        break
                components.append(comp)
            if work:
                parent = work[-1][0]
                if lowlink[node] < lowlink[parent]:
                    lowlink[parent] = lowlink[node]
    return components


def component_index(
    adj: Adjacency, nodes: Iterable[int] = ()
) -> Dict[int, int]:
    """``node -> component id`` for every node."""
    return {
        node: i
        for i, comp in enumerate(strongly_connected_components(adj, nodes))
        for node in comp
    }


def cycle_in_component(adj: Adjacency, component: Sequence[int]) -> List[E]:
    """A concrete directed cycle inside a strongly connected component with
    at least two nodes, as a chained edge list."""
    members = set(component)
    start = component[0]
    # DFS restricted to the component, tracking the path of edges; the first
    # time a node already on the path is reached again, the loop closes.
    path_edges: List[E] = []
    on_path: Dict[int, int] = {start: 0}  # node -> position in path
    cursors: List[int] = [0]
    nodes_on_path: List[int] = [start]
    while cursors:
        node = nodes_on_path[-1]
        succs = adj.get(node, ())
        cursor = cursors[-1]
        advanced = False
        while cursor < len(succs):
            edge = succs[cursor]
            cursor += 1
            if edge.dst not in members:
                continue
            if edge.dst in on_path:
                cursors[-1] = cursor
                return path_edges[on_path[edge.dst] :] + [edge]
            cursors[-1] = cursor
            nodes_on_path.append(edge.dst)
            on_path[edge.dst] = len(path_edges) + 1
            path_edges.append(edge)
            cursors.append(0)
            advanced = True
            break
        if not advanced:
            nodes_on_path.pop()
            del on_path[node]
            cursors.pop()
            if path_edges:
                path_edges.pop()
    raise ValueError("component is not strongly connected")  # pragma: no cover


def shortest_edge_path(
    adj: Adjacency, src: int, dst: int
) -> Optional[Tuple[E, ...]]:
    """Shortest path from ``src`` to ``dst`` as a tuple of edges (BFS), the
    empty tuple when ``src == dst``, or ``None`` when unreachable."""
    if src == dst:
        return ()
    parent: Dict[int, E] = {}
    queue = deque((src,))
    seen = {src}
    while queue:
        node = queue.popleft()
        for edge in adj.get(node, ()):
            nxt = edge.dst
            if nxt in seen:
                continue
            parent[nxt] = edge
            if nxt == dst:
                path: List[E] = []
                while nxt != src:
                    edge = parent[nxt]
                    path.append(edge)
                    nxt = edge.src
                return tuple(reversed(path))
            seen.add(nxt)
            queue.append(nxt)
    return None


def has_path(adj: Adjacency, src: int, dst: int) -> bool:
    """Whether a path of one or more edges leads from ``src`` to ``dst``."""
    if src == dst:
        return any(e.dst == dst for e in adj.get(src, ()))
    return shortest_edge_path(adj, src, dst) is not None


def topological_order(adj: Adjacency, nodes: Iterable[int] = ()) -> List[int]:
    """Kahn's algorithm with a min-heap tie-break (smallest node first), so
    the serialization orders printed in reports are deterministic.  Raises
    :class:`ValueError` if the graph has a cycle."""
    indegree: Dict[int, int] = {n: 0 for n in nodes}
    for src, edges in adj.items():
        indegree.setdefault(src, 0)
        for e in edges:
            indegree[e.dst] = indegree.get(e.dst, 0) + 1
    ready = [n for n, d in indegree.items() if d == 0]
    heapq.heapify(ready)
    out: List[int] = []
    while ready:
        node = heapq.heappop(ready)
        out.append(node)
        for e in adj.get(node, ()):
            indegree[e.dst] -= 1
            if indegree[e.dst] == 0:
                heapq.heappush(ready, e.dst)
    if len(out) != len(indegree):
        raise ValueError("graph has a cycle; no topological order exists")
    return out
