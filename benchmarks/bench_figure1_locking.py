"""FIG1 — Figure 1: Consistency Levels and Locking ANSI-92 Isolation Levels.

The paper's Figure 1 maps each locking profile (short/long read, write and
phantom locks) to the phenomena it proscribes.  This bench runs every
profile over seeded adversarial workloads (hot keys, predicate operations,
inserts) and regenerates the table empirically:

* a profile's *proscribed* phenomena never occur in any emitted history
  (soundness of the lock implementation, row by row);
* the phenomena a profile does **not** proscribe are actually observed in
  some run (the rows are tight, not vacuous).

Both the preventative P-phenomena and the generalized G-phenomena are
reported, which also re-checks the paper's Figure 1 ↔ Figure 6
correspondence for locking schedulers.
"""

from __future__ import annotations

import pytest

from repro.baseline.preventative import (
    PreventativeAnalysis,
    PreventativePhenomenon as P,
)
from repro.core.phenomena import Analysis, Phenomenon as G
from repro.engine import Database, LockingScheduler, Simulator
from repro.workloads import WorkloadConfig, random_programs

N_SEEDS = 12

#: Figure 1 rows: profile -> (proscribed P-phenomena, proscribed G-phenomena)
FIGURE1 = {
    "degree-0": ((), (G.G0,) * 0),
    "read-uncommitted": ((P.P0,), (G.G0,)),
    "read-committed": ((P.P0, P.P1), (G.G0, G.G1)),
    "repeatable-read": ((P.P0, P.P1, P.P2), (G.G0, G.G1, G.G2_ITEM)),
    "serializable": ((P.P0, P.P1, P.P2, P.P3), (G.G0, G.G1, G.G2_ITEM, G.G2)),
}

ALL_P = tuple(P)
ALL_G = (G.G0, G.G1, G.G2_ITEM, G.G2)


def _workload(seed: int):
    cfg = WorkloadConfig(
        n_programs=5,
        steps_per_program=3,
        n_keys=4,
        hot_fraction=0.7,
        write_fraction=0.6,
        predicate_fraction=0.25,
        insert_fraction=0.1,
    )
    return random_programs(cfg, seed=seed), cfg.initial_state()


def run_profile(profile: str):
    """All seeds for one profile; returns sets of observed phenomena."""
    observed_p, observed_g = set(), set()
    for seed in range(N_SEEDS):
        programs, initial = _workload(seed)
        db = Database(LockingScheduler(profile))
        db.load(initial)
        Simulator(db, programs, seed=seed).run()
        history = db.history()
        prev = PreventativeAnalysis(history)
        gen = Analysis(history)
        observed_p |= {p for p in ALL_P if prev.exhibits(p)}
        observed_g |= {g for g in ALL_G if gen.exhibits(g)}
    return observed_p, observed_g


@pytest.mark.parametrize("profile", list(FIGURE1))
def test_figure1_row(benchmark, record_table, profile):
    observed_p, observed_g = benchmark.pedantic(
        run_profile, args=(profile,), iterations=1, rounds=1
    )
    proscribed_p, proscribed_g = FIGURE1[profile]
    # Soundness: proscribed phenomena never occur.
    for p in proscribed_p:
        assert p not in observed_p, f"{profile} must proscribe {p}"
    for g in proscribed_g:
        assert g not in observed_g, f"{profile} must proscribe {g}"

    lines = [
        f"FIG1 row — locking profile {profile!r} ({N_SEEDS} adversarial runs)",
        f"  proscribed (paper): P={[str(p) for p in proscribed_p]} "
        f"G={[str(g) for g in proscribed_g]}",
        f"  observed:           P={sorted(str(p) for p in observed_p)} "
        f"G={sorted(str(g) for g in observed_g)}",
    ]
    record_table(f"figure1_{profile}", "\n".join(lines))


def test_figure1_rows_are_tight(benchmark, record_table):
    """Phenomena not proscribed by a profile actually occur somewhere:
    degree-0 shows P0/G0, read-uncommitted shows P1/G1, read-committed shows
    P2/G2-item, repeatable-read shows P3/G2 (the phantom)."""

    def collect():
        return {profile: run_profile(profile) for profile in FIGURE1}

    results = benchmark.pedantic(collect, iterations=1, rounds=1)
    expectations = [
        ("degree-0", P.P0, None),
        ("read-uncommitted", P.P1, None),
        ("read-committed", P.P2, G.G2_ITEM),
        ("repeatable-read", P.P3, G.G2),
    ]
    lines = ["FIG1 tightness — weaker rows really exhibit the next phenomenon"]
    for profile, p_needed, g_needed in expectations:
        observed_p, observed_g = results[profile]
        assert p_needed in observed_p, f"{profile} should exhibit {p_needed}"
        if g_needed is not None:
            assert g_needed in observed_g, f"{profile} should exhibit {g_needed}"
        lines.append(
            f"  {profile:18} exhibits {p_needed}"
            + (f" and {g_needed}" if g_needed else "")
        )
    record_table("figure1_tightness", "\n".join(lines))
