"""The Direct Serialization Graph (paper Definition 7).

``DSG(H)`` has one node per committed transaction of ``H`` (including the
paper's implicit setup transactions, cf. Figure 5's "T0 is not shown") and
one edge per direct conflict (:mod:`repro.core.conflicts`).  The class keeps
edges in plain adjacency lists (:mod:`repro.core.graph`) and provides the
cycle searches the phenomena need:

* a cycle using only a restricted set of edge flavours (G0 uses only ``ww``,
  G1c only dependency edges);
* a cycle containing *at least one* edge of a flavour (G2, G2-item);
* a cycle containing *exactly one* anti-dependency edge (the G-single
  phenomenon of the PL-2+ extension level).

All searches return a concrete :class:`Cycle` witness (the edge list), which
the checker renders into explanations.  Exhaustive simple-cycle enumeration
for multi-witness reports (:meth:`DSG.find_cycles`) still delegates to
networkx; everything on the checker's hot path runs on the lightweight
adjacency representation — the seed implementation spent most of its time
constructing :class:`networkx.MultiDiGraph` instances per phenomenon.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from . import graph as _g
from .conflicts import DepKind, Edge, PredicateDepMode, all_dependencies
from .history import History

__all__ = ["DSG", "Cycle", "EdgeFilter"]

#: Predicate over edges used to carve out subgraphs.
EdgeFilter = Callable[[Edge], bool]


def dependency_edge(edge: Edge) -> bool:
    """Definition 8's *dependency* edges: read- or write-dependencies."""
    return edge.kind in (DepKind.WW, DepKind.WR)


@dataclass(frozen=True)
class Cycle:
    """A directed cycle as a sequence of edges, each ending where the next
    begins (and the last ending at the first's source)."""

    edges: Tuple[Edge, ...]

    def __post_init__(self) -> None:
        if not self.edges:
            raise ValueError("a cycle has at least one edge")
        for a, b in zip(self.edges, self.edges[1:] + self.edges[:1]):
            if a.dst != b.src:
                raise ValueError(f"edges do not chain: {a} then {b}")

    @property
    def nodes(self) -> Tuple[int, ...]:
        return tuple(e.src for e in self.edges)

    def count(self, kind: DepKind, *, via_predicate: Optional[bool] = None) -> int:
        return sum(
            1
            for e in self.edges
            if e.kind is kind
            and (via_predicate is None or e.via_predicate == via_predicate)
        )

    def describe(self) -> str:
        path = " ".join(f"T{e.src} -{_tag(e)}->" for e in self.edges)
        return f"{path} T{self.edges[0].src}"

    def __str__(self) -> str:
        return self.describe()

    def __len__(self) -> int:
        return len(self.edges)


def _tag(edge: Edge) -> str:
    return ("p" if edge.via_predicate else "") + edge.kind.value


class DSG:
    """Direct serialization graph of a history.

    Parameters
    ----------
    history:
        The (validated) history.
    mode:
        Predicate-read-dependency quantification, see
        :class:`~repro.core.conflicts.PredicateDepMode`.
    extra_edges:
        Additional edges mixed into the graph.  The start-ordered
        serialization graph of the Snapshot Isolation extension passes
        start-dependency edges here.
    edges:
        Precomputed direct-conflict edges for ``history`` under ``mode``.
        :class:`~repro.core.phenomena.Analysis` extracts edges once and
        shares them between its DSG and SSG instead of re-running the
        extractors.
    """

    def __init__(
        self,
        history: History,
        mode: PredicateDepMode = PredicateDepMode.LATEST,
        extra_edges: Iterable[Edge] = (),
        *,
        edges: Optional[Sequence[Edge]] = None,
    ):
        self.history = history
        if edges is None:
            edges = all_dependencies(history, mode)
        self.edges: List[Edge] = list(edges) + list(extra_edges)
        self._nodes = set(history.committed_all)
        self._adj: Dict[int, List[Edge]] = _g.adjacency(self.edges)

    # ------------------------------------------------------------------
    # structure accessors
    # ------------------------------------------------------------------

    @property
    def graph(self):
        """A :class:`networkx.MultiDiGraph` view of the DSG (built lazily;
        only :meth:`find_cycles` and external consumers need it)."""
        cached = getattr(self, "_nx_graph", None)
        if cached is None:
            import networkx as nx

            cached = nx.MultiDiGraph()
            cached.add_nodes_from(self._nodes)
            for e in self.edges:
                cached.add_edge(e.src, e.dst, edge=e)
            self._nx_graph = cached
        return cached

    @property
    def nodes(self) -> Tuple[int, ...]:
        return tuple(sorted(self._nodes))

    def edges_between(self, src: int, dst: int) -> List[Edge]:
        return [e for e in self._adj.get(src, ()) if e.dst == dst]

    def edges_of(self, kind: DepKind, *, via_predicate: Optional[bool] = None) -> List[Edge]:
        return [
            e
            for e in self.edges
            if e.kind is kind
            and (via_predicate is None or e.via_predicate == via_predicate)
        ]

    def to_dot(self) -> str:
        """GraphViz rendering (labels match the paper's figures)."""
        lines = ["digraph DSG {"]
        for n in self.nodes:
            lines.append(f'  T{n} [shape=circle, label="T{n}"];')
        for e in self.edges:
            style = "dashed" if e.kind is DepKind.RW else "solid"
            lines.append(
                f'  T{e.src} -> T{e.dst} [label="{_tag(e)}", style={style}];'
            )
        lines.append("}")
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # cycle searches
    # ------------------------------------------------------------------

    def _filtered(self, keep: EdgeFilter) -> Dict[int, List[Edge]]:
        """Adjacency over the edges passing ``keep``."""
        adj: Dict[int, List[Edge]] = {}
        for e in self.edges:
            if keep(e):
                adj.setdefault(e.src, []).append(e)
        return adj

    def find_cycle(self, keep: EdgeFilter) -> Optional[Cycle]:
        """Any cycle using only edges passing ``keep``, or ``None``."""
        adj = self._filtered(keep)
        for scc in _g.strongly_connected_components(adj):
            if len(scc) < 2:
                continue
            return Cycle(tuple(_g.cycle_in_component(adj, scc)))
        return None

    def find_cycle_with(
        self,
        special: EdgeFilter,
        keep: EdgeFilter,
        *,
        exactly_one: bool = False,
    ) -> Optional[Cycle]:
        """A cycle whose edges all pass ``keep`` and which contains at least
        one edge passing ``special``.

        With ``exactly_one=True``, the returned cycle contains exactly one
        ``special`` edge and the rest of the cycle avoids them (the G-single
        shape: one anti-dependency closed by dependency edges).
        """
        if exactly_one:
            rest = self._filtered(lambda e: keep(e) and not special(e))
            for e in self.edges:
                if keep(e) and special(e):
                    path = _g.shortest_edge_path(rest, e.dst, e.src)
                    if path is not None:
                        return Cycle((e, *path))
            return None
        adj = self._filtered(keep)
        sccs = _g.component_index(adj)
        for e in self.edges:
            if not (keep(e) and special(e)):
                continue
            if sccs.get(e.src) is not None and sccs[e.src] == sccs.get(e.dst):
                if e.src == e.dst:
                    continue
                path = _g.shortest_edge_path(adj, e.dst, e.src)
                if path is not None:
                    return Cycle((e, *path))
        return None

    def find_cycles(
        self,
        keep: EdgeFilter,
        *,
        special: Optional[EdgeFilter] = None,
        limit: int = 10,
    ) -> List[Cycle]:
        """Up to ``limit`` distinct simple cycles whose edges all pass
        ``keep`` (and, if given, containing at least one ``special`` edge).

        Cycle enumeration is exponential in general; the ``limit`` bounds
        the work.  Distinctness is by node set, so parallel edges do not
        inflate the list.  Used for multi-witness reports; the phenomena
        themselves only need existence (:meth:`find_cycle`)."""
        import networkx as nx

        g = nx.MultiDiGraph()
        g.add_nodes_from(self._nodes)
        for e in self.edges:
            if keep(e):
                g.add_edge(e.src, e.dst, edge=e)
        out: List[Cycle] = []
        seen_nodesets = set()
        for nodes in nx.simple_cycles(nx.DiGraph(g)):
            if len(out) >= limit:
                break
            key = frozenset(nodes)
            if key in seen_nodesets:
                continue
            cycle = _to_cycle_preferring(g, nodes, special)
            if special is not None and not any(
                special(e) for e in cycle.edges
            ):
                continue
            seen_nodesets.add(key)
            out.append(cycle)
        return out

    def directly_depends(self, ti: int, tj: int) -> bool:
        """Definition 8, first half: ``T_j`` directly write- or
        read-depends on ``T_i``."""
        return any(
            dependency_edge(e) for e in self.edges_between(ti, tj)
        )

    def depends(self, ti: int, tj: int) -> bool:
        """Definition 8: ``T_j`` depends on ``T_i`` — a path of one or more
        dependency (ww/wr) edges from ``T_i`` to ``T_j``."""
        if ti == tj or ti not in self._nodes or tj not in self._nodes:
            return False
        dep = self._filtered(dependency_edge)
        return _g.shortest_edge_path(dep, ti, tj) is not None

    def is_acyclic(self) -> bool:
        return all(
            len(scc) < 2
            for scc in _g.strongly_connected_components(self._adj, self._nodes)
        )

    def topological_order(self) -> List[int]:
        """A serialization order of the committed transactions (only valid
        when the graph is acyclic)."""
        return _g.topological_order(self._adj, self._nodes)


def _to_cycle_preferring(
    g, nodes: Sequence[int], special: Optional[EdgeFilter]
) -> Cycle:
    """Chain a node cycle into edges, preferring ``special`` edges among
    parallels so the witness justifies the phenomenon when possible."""
    edges = []
    for u, v in zip(nodes, list(nodes[1:]) + [nodes[0]]):
        parallel = [d["edge"] for d in g[u][v].values()]
        if special is not None:
            preferred = [e for e in parallel if special(e)]
            edges.append((preferred or parallel)[0])
        else:
            edges.append(parallel[0])
    return Cycle(tuple(edges))


def _shortest_edge_path(
    adj: Dict[int, List[Edge]], src: int, dst: int
) -> Optional[Tuple[Edge, ...]]:
    """Shortest path from ``src`` to ``dst`` as edges, or ``None``; a
    zero-length path (``src == dst``) is the empty tuple.  ``adj`` is the
    adjacency mapping returned by :meth:`DSG._filtered`."""
    return _g.shortest_edge_path(adj, src, dst)
