"""Tests for start-ordered serialization graphs (repro.core.ssg)."""

from repro.core import parse_history
from repro.core.conflicts import DepKind
from repro.core.ssg import SSG, start_dependencies, starts_before


class TestStartsBefore:
    def test_commit_before_first_event(self):
        h = parse_history("w1(x1) c1 w2(y2) c2")
        assert starts_before(h, 1, 2)
        assert not starts_before(h, 2, 1)

    def test_overlapping_transactions(self):
        h = parse_history("w1(x1) w2(y2) c1 c2")
        assert not starts_before(h, 1, 2)
        assert not starts_before(h, 2, 1)

    def test_begin_event_used_when_present(self):
        h = parse_history("b2 w1(x1) c1 w2(y2) c2")
        assert not starts_before(h, 1, 2)

    def test_setup_transactions_precede_everything(self):
        h = parse_history("r1(x0) c1")
        assert starts_before(h, 0, 1)
        assert not starts_before(h, 1, 0)


class TestStartDependencies:
    def test_serial_chain(self):
        h = parse_history("w1(x1) c1 w2(y2) c2 w3(z3) c3")
        edges = {(e.src, e.dst) for e in start_dependencies(h)}
        assert edges == {(1, 2), (1, 3), (2, 3)}

    def test_only_committed_transactions(self):
        h = parse_history("w1(x1) c1 w2(y2) a2 w3(z3) c3")
        edges = {(e.src, e.dst) for e in start_dependencies(h)}
        assert edges == {(1, 3)}


class TestSSG:
    def test_contains_dsg_edges_plus_start_edges(self):
        h = parse_history("w1(x1) c1 r2(x1) c2")
        ssg = SSG(h)
        kinds = {e.kind for e in ssg.edges}
        assert DepKind.SO in kinds and DepKind.WR in kinds

    def test_start_edge_lookup(self):
        h = parse_history("w1(x1) c1 r2(x1) c2")
        ssg = SSG(h)
        assert ssg.start_edge(1, 2)
        assert not ssg.start_edge(2, 1)
