"""Command-line interface: ``python -m repro <command> ...``.

Commands
--------

``check``
    Full analysis of a history: phenomena with witnesses, per-level
    verdicts, strongest level.  ``--extensions`` adds PL-CS/PL-2+/PL-SI,
    ``--level`` restricts to one level (exit status reflects the verdict),
    ``--profile FILE`` runs the analysis under cProfile (pstats dump plus a
    top-20 summary).
``check-many``
    Check a batch of history files (one history per file) and print one
    summary line each; ``--processes N`` fans the batch out over worker
    processes (default: one per CPU) and ``--chunksize K`` packs K
    histories into each pickled worker task.
``classify``
    Print just the strongest ANSI level (or ``none``).
``dsg``
    Emit the history's direct serialization graph as GraphViz dot.
``phenomena``
    One line per phenomenon: exhibited or absent.
``mixing``
    Test Definition 9 mixing-correctness (levels from ``bI@PL-x`` events).
``preventative``
    Run the Berenson et al. P0–P3 baseline for comparison.
``repair``
    Compute which transactions must abort (with cascades) for the history
    to provide ``--level`` (default PL-3), and print the repaired history.
``timeline``
    Render the history as a transaction/time grid (one row per
    transaction).
``trace``
    Replay the history through the online monitor and the batch checker
    under a :class:`~repro.observability.Tracer` and emit the JSONL trace
    (``--out`` for a file, default stdout).  Latched phenomena appear as
    ``phenomenon`` provenance events naming the witness cycle's edges.
``stats``
    Check the history with a fresh metrics registry attached and print the
    collected metrics as text (default), JSON (``--format json``), or
    Prometheus exposition (``--format prometheus``).
``serve``
    Run the in-process client/server service demo: one server behind the
    simulated unreliable network, a scripted client session, journal and
    resulting history printed.  ``--selftest`` instead runs a seeded
    fault+crash exchange and verifies determinism and live certification
    (exit status reflects the verdict; no history argument needed).
``stress``
    Seeded multi-client fault-injection stress run over the service layer:
    drops, duplicates, reordering, optional crash/restart; every commit is
    live-certified at its declared level.  ``--journal``/``--history`` dump
    the client-observed journals / server history; ``--trace FILE``
    records the causally-linked end-to-end service trace (see
    ``docs/observability.md``); ``--metrics``/``--metrics-out`` print or
    dump the metrics snapshot (no history argument needed).
``corpus``
    Self-test: re-check every canonical paper history and anomaly against
    its documented verdicts and print the admission matrix (no history
    argument needed).
``report``
    Run a condensed version of every paper experiment and print a markdown
    reproduction report.  With ``--stress`` (plus the stress options), run
    one seeded stress workload instead and emit its unified run report —
    config, outcome, latency percentiles, contended objects, phenomena
    with witness-cycle provenance, metrics; ``--trace FILE`` (optionally
    with ``--metrics-file``) builds the same report from a previously
    recorded trace instead.  ``--format json`` renders JSON (no history
    argument needed).

The history is taken from the positional argument, from ``--file``, or from
stdin, in the paper's notation::

    python -m repro classify "w1(x1) c1 r2(x1) c2"
    echo "w1(x1) r2(x1) c2 a1" | python -m repro check --auto-complete

Exit status: 0 on success (and, with ``--level``, when the level is
provided); 1 when a requested level is violated; 2 on bad input.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from .baseline.preventative import PreventativeAnalysis, PreventativePhenomenon
from .checker import check
from .core.dsg import DSG
from .core.levels import IsolationLevel, classify
from .core.msg import mixing_correct
from .core.parser import parse_history
from .exceptions import ReproError

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Generalized isolation level checker (Adya/Liskov/O'Neil, ICDE 2000)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_history_args(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "history",
            nargs="?",
            help="history in the paper's notation (default: read stdin)",
        )
        p.add_argument("--file", "-f", help="read the history from a file")
        p.add_argument(
            "--auto-complete",
            action="store_true",
            help="append aborts for unfinished transactions (Section 4.2)",
        )

    p_check = sub.add_parser("check", help="full phenomenon/level analysis")
    add_history_args(p_check)
    p_check.add_argument(
        "--extensions",
        action="store_true",
        help="also test PL-CS, PL-2+ and PL-SI",
    )
    p_check.add_argument(
        "--level",
        help="test only this level (name or alias, e.g. 'PL-3', 'repeatable read')",
    )
    p_check.add_argument(
        "--metrics",
        action="store_true",
        help="also print the checker's collected metrics",
    )
    p_check.add_argument(
        "--profile",
        metavar="FILE",
        help="profile the check under cProfile: write pstats to FILE and "
        "print the top-20 functions by cumulative time",
    )

    p_many = sub.add_parser(
        "check-many",
        help="check a batch of history files, optionally in parallel",
    )
    p_many.add_argument(
        "files", nargs="+", help="history files in the paper's notation"
    )
    p_many.add_argument(
        "--processes",
        "-j",
        type=int,
        default=None,
        help="worker processes (default: one per CPU; 1 = serial)",
    )
    p_many.add_argument(
        "--chunksize",
        type=int,
        default=None,
        help="histories per pickled worker task (default: a heuristic "
        "targeting ~4 tasks per worker)",
    )
    p_many.add_argument(
        "--extensions",
        action="store_true",
        help="also test PL-CS, PL-2+ and PL-SI",
    )
    p_many.add_argument(
        "--auto-complete",
        action="store_true",
        help="append aborts for unfinished transactions (Section 4.2)",
    )
    p_many.add_argument(
        "--metrics",
        action="store_true",
        help="also print collected metrics (forces the serial path)",
    )

    p_classify = sub.add_parser("classify", help="print the strongest ANSI level")
    add_history_args(p_classify)

    p_dsg = sub.add_parser("dsg", help="print the DSG as GraphViz dot")
    add_history_args(p_dsg)

    p_phen = sub.add_parser("phenomena", help="list exhibited phenomena")
    add_history_args(p_phen)

    p_mix = sub.add_parser("mixing", help="Definition 9 mixing-correctness")
    add_history_args(p_mix)

    p_prev = sub.add_parser(
        "preventative", help="Berenson et al. P0-P3 baseline verdicts"
    )
    add_history_args(p_prev)

    p_timeline = sub.add_parser(
        "timeline", help="render the history as a transaction/time grid"
    )
    add_history_args(p_timeline)

    p_repair = sub.add_parser(
        "repair", help="abort set needed to certify the history at a level"
    )
    add_history_args(p_repair)
    p_repair.add_argument(
        "--level", default="PL-3", help="target level (default PL-3)"
    )

    p_trace = sub.add_parser(
        "trace",
        help="replay the history under a tracer and emit the JSONL trace",
    )
    add_history_args(p_trace)
    p_trace.add_argument(
        "--out",
        "-o",
        help="write the JSONL trace to this file (default: stdout)",
    )

    p_stats = sub.add_parser(
        "stats", help="check the history and print the collected metrics"
    )
    add_history_args(p_stats)
    p_stats.add_argument(
        "--format",
        choices=("text", "json", "prometheus"),
        default="text",
        help="output format (default: text)",
    )
    p_stats.add_argument(
        "--extensions",
        action="store_true",
        help="also test PL-CS, PL-2+ and PL-SI",
    )

    def add_observability_args(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--trace",
            metavar="FILE",
            help="record an end-to-end service trace to this JSONL file",
        )
        p.add_argument(
            "--metrics",
            action="store_true",
            help="also print the collected metrics as text",
        )
        p.add_argument(
            "--metrics-out",
            metavar="FILE",
            help="write the metrics snapshot to this JSON file",
        )

    def add_stress_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("--scheduler", default="locking")
        p.add_argument(
            "--level", default=None, help="declared isolation level for every "
            "transaction (default: the scheduler's natural level)"
        )
        p.add_argument("--clients", type=int, default=4)
        p.add_argument(
            "--txns", type=int, default=25, help="committed txns per client"
        )
        p.add_argument("--keys", type=int, default=8)
        p.add_argument("--ops", type=int, default=2, help="RMW pairs per txn")
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--drop", type=float, default=0.05)
        p.add_argument("--duplicate", type=float, default=0.05)
        p.add_argument("--min-delay", type=int, default=1)
        p.add_argument("--max-delay", type=int, default=4)
        p.add_argument(
            "--crash-after",
            type=int,
            default=None,
            help="crash the server after this many commits (then restart)",
        )
        p.add_argument("--restart-delay", type=int, default=25)
        p.add_argument(
            "--no-pipeline",
            dest="pipeline",
            action="store_false",
            help="deliver the due message batch one step at a time instead "
            "of one drain_due() sweep (same schedule, more driver overhead)",
        )

    p_serve = sub.add_parser(
        "serve", help="in-process client/server service demo"
    )
    p_serve.add_argument(
        "--selftest",
        action="store_true",
        help="run a seeded fault+crash exchange and verify determinism "
        "and live certification",
    )
    p_serve.add_argument(
        "--scheduler",
        default="locking",
        help="engine family (locking, optimistic, snapshot-isolation, "
        "mv-read-committed, mixed-optimistic, or an alias)",
    )
    p_serve.add_argument("--seed", type=int, default=0, help="fault seed")
    add_observability_args(p_serve)

    p_stress = sub.add_parser(
        "stress", help="seeded fault-injection stress run over the service"
    )
    add_stress_args(p_stress)
    p_stress.add_argument(
        "--journal",
        action="store_true",
        help="also print the client-observed journals",
    )
    p_stress.add_argument(
        "--history",
        action="store_true",
        help="also print the resulting server-side history",
    )
    p_stress.add_argument(
        "--profile",
        metavar="FILE",
        help="profile the run under cProfile: write pstats to FILE and "
        "print the top-20 functions by cumulative time",
    )
    add_observability_args(p_stress)

    p_cluster = sub.add_parser(
        "cluster-stress",
        help="seeded stress run over a sharded cluster with cross-shard "
        "2PC and global certification",
    )
    add_stress_args(p_cluster)
    p_cluster.add_argument(
        "--shards", type=int, default=3,
        help="shard servers in the cluster (default: %(default)s)",
    )
    p_cluster.add_argument(
        "--slots", type=int, default=16,
        help="hash slots in the shard map (default: %(default)s)",
    )
    p_cluster.add_argument(
        "--crash-shard", default=None, metavar="SHARD:N",
        help="crash shard SHARD right after its N-th prepare (the "
        "between-prepare-and-commit WAL-recovery fault)",
    )
    p_cluster.add_argument(
        "--shard-restart-delay", type=int, default=30,
        help="ticks until a fault-schedule-crashed shard restarts",
    )
    p_cluster.add_argument(
        "--partition-coordinator", type=int, default=None, metavar="N",
        help="partition the coordinator from every shard once it has sent "
        "N prepares (mid-prepare), healing after --heal-after ticks",
    )
    p_cluster.add_argument(
        "--heal-after", type=int, default=40,
        help="ticks until the coordinator partition heals",
    )
    p_cluster.add_argument(
        "--retry-every", type=int, default=25,
        help="coordinator retransmit period for unacked 2PC messages",
    )
    p_cluster.add_argument(
        "--replicas", type=int, default=0,
        help="backup replicas per shard, fed from the primary's "
        "replication log with seeded lag (default: %(default)s)",
    )
    p_cluster.add_argument(
        "--read-preference", default="primary",
        choices=("primary", "replica", "nearest"),
        help="where replica-eligible reads route (default: %(default)s)",
    )
    p_cluster.add_argument(
        "--session-guarantees", default=None, metavar="SPEC",
        help="comma-separated session guarantees for replica reads: "
        "ryw/read-your-writes, mr/monotonic-reads, causal, plus "
        "wait|redirect for the lag reaction; 'none' (the default) reads "
        "stale-by-choice and records violation witnesses instead",
    )
    p_cluster.add_argument(
        "--read-only-fraction", type=float, default=0.0,
        help="fraction of transactions that are read-only probes, the "
        "ones eligible for replica routing (default: %(default)s)",
    )
    p_cluster.add_argument(
        "--replication-every", type=int, default=4,
        help="primary replication pump period in ticks "
        "(default: %(default)s)",
    )
    p_cluster.add_argument(
        "--replication-lag", default="1:4", metavar="MIN:MAX",
        help="seeded per-batch replication delay range "
        "(default: %(default)s)",
    )
    p_cluster.add_argument(
        "--journal",
        action="store_true",
        help="also print the client-observed journals",
    )
    p_cluster.add_argument(
        "--history",
        action="store_true",
        help="also print the merged cross-shard history",
    )
    p_cluster.add_argument(
        "--selftest",
        action="store_true",
        help="run the cross-shard fault matrix twice (shard crash between "
        "prepare and commit, coordinator partitioned mid-prepare) plus "
        "the replica-lag matrix (backup crash mid-catch-up, partitioned "
        "primary with stale replica reads, promote-backup via ShardMap) "
        "and verify byte-for-byte determinism, the shards=1 equivalence, "
        "and opcheck/DSG agreement",
    )
    add_observability_args(p_cluster)

    p_capacity = sub.add_parser(
        "capacity",
        help="open-loop offered-load sweep: saturation knee, SLO verdicts, "
        "contention heatmap",
    )
    p_capacity.add_argument(
        "--rates",
        default="0.02,0.05,0.1,0.2",
        help="comma-separated offered arrival rates (txns/tick) for the "
        "ladder (default: %(default)s)",
    )
    p_capacity.add_argument(
        "--horizon", type=int, default=1500,
        help="ticks of offered load per rung (default: %(default)s)",
    )
    p_capacity.add_argument("--scheduler", default="locking")
    p_capacity.add_argument(
        "--level", default=None, help="declared isolation level for every "
        "transaction (default: the scheduler's natural level)"
    )
    p_capacity.add_argument("--clients", type=int, default=8)
    p_capacity.add_argument("--keys", type=int, default=8)
    p_capacity.add_argument("--ops", type=int, default=2)
    p_capacity.add_argument("--seed", type=int, default=0)
    p_capacity.add_argument("--drop", type=float, default=0.0)
    p_capacity.add_argument("--duplicate", type=float, default=0.0)
    p_capacity.add_argument("--min-delay", type=int, default=1)
    p_capacity.add_argument("--max-delay", type=int, default=2)
    p_capacity.add_argument(
        "--zipf", type=float, default=None, metavar="THETA",
        help="Zipf-skew the key picks with this theta (default: uniform)",
    )
    p_capacity.add_argument(
        "--max-active", type=int, default=0,
        help="admission control: shed begins past this many active "
        "transactions (0 = no shedding)",
    )
    p_capacity.add_argument("--retry-after", type=int, default=8)
    p_capacity.add_argument(
        "--certify-every", type=int, default=1,
        help="batch commit certification in groups of this size",
    )
    p_capacity.add_argument(
        "--on-uncertified",
        choices=("ignore", "downgrade", "repair"),
        default="ignore",
        help="reaction to a failed live certification",
    )
    p_capacity.add_argument(
        "--slo-p99", type=float, default=None, metavar="TICKS",
        help="SLO: rolling p99 commit latency must stay <= TICKS",
    )
    p_capacity.add_argument(
        "--slo-certified", type=float, default=None, metavar="FRACTION",
        help="SLO: certified fraction in the window must stay >= FRACTION",
    )
    p_capacity.add_argument(
        "--slo-queue", type=float, default=None, metavar="DEPTH",
        help="SLO: arrival backlog must stay <= DEPTH",
    )
    p_capacity.add_argument("--window", type=int, default=500)
    p_capacity.add_argument("--sample-every", type=int, default=100)
    p_capacity.add_argument(
        "--no-heatmap", dest="heatmap", action="store_false",
        help="skip per-rung tracing (no contention heatmap; faster)",
    )
    p_capacity.add_argument(
        "--format",
        choices=("markdown", "json"),
        default="markdown",
        help="report rendering (default: markdown)",
    )
    p_capacity.add_argument(
        "--selftest",
        action="store_true",
        help="run a small fixed ladder twice and verify the capacity "
        "report is byte-identical and well-formed",
    )

    def add_dossier_workload_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("--scheduler", default="locking")
        p.add_argument(
            "--level", default="PL-2",
            help="declared isolation level (default: %(default)s)",
        )
        p.add_argument("--clients", type=int, default=4)
        p.add_argument("--txns", type=int, default=10)
        p.add_argument("--keys", type=int, default=6)
        p.add_argument("--ops", type=int, default=4)
        p.add_argument("--seed", type=int, default=7)
        p.add_argument("--shards", type=int, default=2)
        p.add_argument(
            "--replicas", type=int, default=2,
            help="backup replicas per shard (default: %(default)s); with "
            "--read-preference replica and no session guarantees the "
            "stale reads latch phenomena for the recorder to dossier",
        )
        p.add_argument(
            "--read-preference", default="replica",
            choices=("primary", "replica", "nearest"),
        )
        p.add_argument("--read-only-fraction", type=float, default=0.5)
        p.add_argument("--replication-every", type=int, default=12)
        p.add_argument("--replication-lag", default="4:10", metavar="MIN:MAX")
        p.add_argument("--drop", type=float, default=0.05)
        p.add_argument("--duplicate", type=float, default=0.05)
        p.add_argument("--min-delay", type=int, default=1)
        p.add_argument("--max-delay", type=int, default=4)

    p_dossier = sub.add_parser(
        "dossier",
        help="run a seeded replicated cluster workload under the anomaly "
        "flight recorder and render the dossiers it captures (witness "
        "cycle + trace slice + replica/2PC state per latched anomaly)",
    )
    add_dossier_workload_args(p_dossier)
    p_dossier.add_argument(
        "--capacity", type=int, default=256,
        help="flight-ring capacity per shard lane (default: %(default)s)",
    )
    p_dossier.add_argument(
        "--opcheck",
        action="store_true",
        help="also run the operation-interval checker post-run and capture "
        "a stale-read dossier when it fails",
    )
    p_dossier.add_argument(
        "--out", "-o", metavar="FILE",
        help="write the dossiers as one canonical JSON array to FILE",
    )
    p_dossier.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="stdout rendering (default: %(default)s)",
    )
    p_dossier.add_argument(
        "--selftest",
        action="store_true",
        help="run the seeded workload twice and verify the dossiers are "
        "byte-identical, cover every witness transaction's spans, and "
        "leave the run's artifacts untouched",
    )

    p_creport = sub.add_parser(
        "cluster-report",
        help="run a seeded replicated cluster workload and emit the "
        "unified run report with its Cluster section (per-shard latency, "
        "replication lag, 2PC in-doubt durations, session violations)",
    )
    add_dossier_workload_args(p_creport)
    p_creport.add_argument(
        "--format",
        choices=("markdown", "json"),
        default="markdown",
        help="report rendering (default: %(default)s)",
    )
    p_creport.add_argument(
        "--chrome-out", metavar="FILE",
        help="also write the trace as Chrome trace-event JSON with "
        "per-shard/per-replica Perfetto tracks",
    )

    sub.add_parser(
        "corpus",
        help="self-test against the paper corpus; print the admission matrix",
    )

    p_report = sub.add_parser(
        "report",
        help="paper reproduction report, or (--stress/--trace) a unified "
        "run report for one stress run",
    )
    p_report.add_argument(
        "--stress",
        action="store_true",
        help="run one seeded stress workload (options below) and emit its "
        "unified run report instead of the paper report",
    )
    add_stress_args(p_report)
    p_report.add_argument(
        "--trace",
        metavar="FILE",
        help="build the run report from this trace file (JSONL or Chrome "
        "trace JSON) instead of running a workload",
    )
    p_report.add_argument(
        "--metrics-file",
        metavar="FILE",
        help="metrics snapshot JSON to fold into the report (with --trace)",
    )
    p_report.add_argument(
        "--format",
        choices=("markdown", "json"),
        default="markdown",
        help="report rendering (default: markdown)",
    )

    return parser


def _read_history(args, out=sys.stdout):
    if args.file:
        with open(args.file, encoding="utf-8") as handle:
            text = handle.read()
    elif args.history is not None:
        text = args.history
    else:
        text = sys.stdin.read()
    return parse_history(text, auto_complete=args.auto_complete)


def main(argv: Optional[Sequence[str]] = None, out=None) -> int:
    """Entry point; returns the process exit status."""
    out = out or sys.stdout
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.command == "corpus":
        return _run_corpus(out)

    if args.command == "report":
        if args.stress or args.trace:
            return _run_report_cmd(args, out)
        from .analysis.report_gen import generate_report

        text, all_ok = generate_report()
        print(text, file=out)
        return 0 if all_ok else 1

    if args.command == "serve":
        return _run_serve(args, out)

    if args.command == "stress":
        return _run_stress_cmd(args, out)

    if args.command == "cluster-stress":
        return _run_cluster_stress_cmd(args, out)

    if args.command == "capacity":
        return _run_capacity_cmd(args, out)

    if args.command == "dossier":
        return _run_dossier_cmd(args, out)

    if args.command == "cluster-report":
        return _run_cluster_report_cmd(args, out)

    if args.command == "check-many":
        return _run_check_many(args, out)

    try:
        history = _read_history(args)
    except (ReproError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.command == "check":
        registry = None
        if args.metrics:
            from .observability import MetricsRegistry

            registry = MetricsRegistry()
        if args.level:
            try:
                level = IsolationLevel.from_string(args.level)
            except KeyError as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 2
            profiler = _maybe_profile(args.profile)
            report = check(history, levels=(level,), metrics=registry)
            verdict = report.verdicts[level]
            print(verdict.describe(), file=out)
            if registry is not None:
                print("\nmetrics:", file=out)
                print(registry.render_text(), file=out)
            _dump_profile(profiler, args.profile, out)
            return 0 if verdict.ok else 1
        profiler = _maybe_profile(args.profile)
        report = check(history, extensions=args.extensions, metrics=registry)
        print(report.explain(), file=out)
        if registry is not None:
            print("\nmetrics:", file=out)
            print(registry.render_text(), file=out)
        _dump_profile(profiler, args.profile, out)
        return 0

    if args.command == "classify":
        level = classify(history)
        print(str(level) if level is not None else "none", file=out)
        return 0

    if args.command == "dsg":
        print(DSG(history).to_dot(), file=out)
        return 0

    if args.command == "phenomena":
        report = check(history)
        for item in report.phenomena():
            print(item.describe(), file=out)
        return 0

    if args.command == "mixing":
        result = mixing_correct(history)
        print(result.describe(), file=out)
        return 0 if result.ok else 1

    if args.command == "preventative":
        analysis = PreventativeAnalysis(history)
        for phenomenon in PreventativePhenomenon:
            print(analysis.report(phenomenon).describe(), file=out)
        return 0

    if args.command == "timeline":
        from .core.timeline import timeline

        print(timeline(history), file=out)
        return 0

    if args.command == "trace":
        return _run_trace(args, history, out)

    if args.command == "stats":
        return _run_stats(args, history, out)

    if args.command == "repair":
        from .analysis.repair import repair as run_repair

        try:
            level = IsolationLevel.from_string(args.level)
        except KeyError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        result = run_repair(history, level)
        print(result.describe(), file=out)
        if not result.clean:
            print(f"repaired history: {result.history}", file=out)
        return 0

    raise AssertionError("unreachable")  # pragma: no cover


def _maybe_profile(path: Optional[str]):
    """Start a cProfile profiler when ``--profile FILE`` was given."""
    if not path:
        return None
    import cProfile

    profiler = cProfile.Profile()
    profiler.enable()
    return profiler


def _dump_profile(profiler, path: Optional[str], out) -> None:
    """Stop the profiler, dump raw pstats to ``path`` and print the top-20
    functions by cumulative time (loadable later with ``pstats.Stats``)."""
    if profiler is None:
        return
    import io
    import pstats

    profiler.disable()
    profiler.dump_stats(path)
    buffer = io.StringIO()
    stats = pstats.Stats(profiler, stream=buffer)
    stats.strip_dirs().sort_stats("cumulative").print_stats(20)
    print(f"\nprofile: pstats written to {path}", file=out)
    print(buffer.getvalue().rstrip(), file=out)


def _observability_sinks(args):
    """Build the (metrics, tracer) pair the ``--trace``/``--metrics``/
    ``--metrics-out`` flags ask for (``None`` where not requested)."""
    metrics = tracer = None
    if args.metrics or args.metrics_out:
        from .observability import MetricsRegistry

        metrics = MetricsRegistry()
    if args.trace:
        from .observability import Tracer

        tracer = Tracer()
    return metrics, tracer


def _flush_observability(args, metrics, tracer, out) -> None:
    """Write/print whatever the observability flags requested."""
    import json

    if tracer is not None and args.trace:
        from .observability import JsonlSink

        with JsonlSink(args.trace) as sink:
            for record in tracer.records:
                sink(record)
        print(
            f"wrote {len(tracer.records)} trace records to {args.trace}",
            file=out,
        )
    if metrics is not None and args.metrics_out:
        with open(args.metrics_out, "w", encoding="utf-8") as handle:
            json.dump(metrics.snapshot(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote metrics snapshot to {args.metrics_out}", file=out)
    if metrics is not None and args.metrics:
        print("\nmetrics:", file=out)
        print(metrics.render_text(), file=out)


def _run_serve(args, out) -> int:
    """Scripted client/server demo; ``--selftest`` runs the seeded
    fault+crash exchange and verifies determinism + certification."""
    from .service import NetworkConfig, StressConfig, run_stress

    metrics, tracer = _observability_sinks(args)
    if args.selftest:
        cfg = StressConfig(
            scheduler=args.scheduler,
            clients=3,
            txns_per_client=10,
            seed=args.seed,
            network=NetworkConfig(
                drop=0.05, duplicate=0.05, min_delay=1, max_delay=4
            ),
            crash_after_commits=10,
        )
        first = run_stress(cfg, metrics=metrics, tracer=tracer)
        second = run_stress(cfg)
        reproducible = (
            first.history_text == second.history_text
            and first.journals == second.journals
        )
        ok = (
            reproducible
            and first.all_certified
            and first.crashes == 1
            and first.restarts == 1
            and first.committed == 30
        )
        print(first.summary(), file=out)
        print(
            f"reproducible           : {'yes' if reproducible else 'NO'}",
            file=out,
        )
        print(f"selftest               : {'ok' if ok else 'FAILED'}", file=out)
        _flush_observability(args, metrics, tracer, out)
        return 0 if ok else 1

    from .service import Client, Server, SimulatedNetwork

    net = SimulatedNetwork(NetworkConfig(seed=args.seed), metrics=metrics, tracer=tracer)
    if tracer is not None:
        tracer.use_clock(lambda: float(net.now))
    server = Server(
        net, args.scheduler, initial={"x": 10, "y": 20},
        metrics=metrics, tracer=tracer,
    )
    alice = Client(net, name="alice", metrics=metrics, tracer=tracer)
    bob = Client(net, name="bob", metrics=metrics, tracer=tracer)
    alice.begin()
    x = alice.read("x", for_update=True)
    alice.write("x", x + 5)
    alice.commit()
    bob.begin()
    bob.write("y", bob.read("y", for_update=True) - 5)
    bob.commit()
    for client in (alice, bob):
        for line in client.journal:
            print(line, file=out)
    print(f"\nhistory: {server.history()}", file=out)
    _flush_observability(args, metrics, tracer, out)
    return 0


def _stress_config(args, *, cluster=None):
    """The :class:`StressConfig` the shared stress CLI options map to."""
    from .service import NetworkConfig, SessionGuarantees, StressConfig

    spec = getattr(args, "session_guarantees", None)
    guarantees = SessionGuarantees.parse(spec) if spec is not None else None
    return StressConfig(
        scheduler=args.scheduler,
        level=args.level,
        clients=args.clients,
        txns_per_client=args.txns,
        keys=args.keys,
        ops_per_txn=args.ops,
        seed=args.seed,
        network=NetworkConfig(
            drop=args.drop,
            duplicate=args.duplicate,
            min_delay=args.min_delay,
            max_delay=args.max_delay,
        ),
        crash_after_commits=args.crash_after,
        restart_delay=args.restart_delay,
        pipeline=args.pipeline,
        cluster=cluster,
        read_preference=getattr(args, "read_preference", "primary"),
        session_guarantees=guarantees,
        read_only_fraction=getattr(args, "read_only_fraction", 0.0),
    )


def _run_stress_cmd(args, out) -> int:
    """Run one seeded stress workload and print the summary."""
    from .service import run_stress

    metrics, tracer = _observability_sinks(args)
    profiler = _maybe_profile(args.profile)
    try:
        result = run_stress(
            _stress_config(args), metrics=metrics, tracer=tracer
        )
    except (KeyError, ValueError) as exc:
        if profiler is not None:
            profiler.disable()
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(result.summary(), file=out)
    if args.journal:
        print("\nclient journals:", file=out)
        print(result.journal_text(), file=out)
    if args.history:
        print("\nhistory:", file=out)
        print(result.history_text, file=out)
    _dump_profile(profiler, args.profile, out)
    _flush_observability(args, metrics, tracer, out)
    return 0 if result.all_certified else 1


def _cluster_config(args):
    """The :class:`ClusterConfig` the cluster CLI options map to."""
    from .service import ClusterConfig

    crash = None
    if args.crash_shard:
        shard, _, nth = args.crash_shard.partition(":")
        try:
            crash = (int(shard), int(nth) if nth else 1)
        except ValueError:
            raise ValueError(f"bad --crash-shard {args.crash_shard!r}; "
                             "expected SHARD or SHARD:N") from None
    lo, _, hi = args.replication_lag.partition(":")
    try:
        lag = (int(lo), int(hi) if hi else int(lo))
    except ValueError:
        raise ValueError(f"bad --replication-lag {args.replication_lag!r}; "
                         "expected MIN:MAX") from None
    return ClusterConfig(
        shards=args.shards,
        slots=args.slots,
        crash_shard_after_prepares=crash,
        shard_restart_delay=args.shard_restart_delay,
        partition_coordinator_after_prepares=args.partition_coordinator,
        heal_after=args.heal_after,
        retry_every=args.retry_every,
        replicas=args.replicas,
        replication_every=args.replication_every,
        replication_lag=lag,
    )


def _cluster_selftest(args, metrics, tracer, out) -> int:
    """Fault-matrix + equivalence selftest for the sharded cluster: the
    faulty cross-shard run replays byte for byte, and a one-shard cluster
    is byte-identical to the plain single-server service."""
    from dataclasses import replace

    from .service import ClusterConfig, NetworkConfig, StressConfig, run_stress

    faulty = StressConfig(
        scheduler="locking",
        clients=4,
        txns_per_client=8,
        keys=8,
        ops_per_txn=2,
        seed=args.seed,
        network=NetworkConfig(
            drop=0.05, duplicate=0.05, min_delay=1, max_delay=4
        ),
        cluster=ClusterConfig(
            shards=3,
            crash_shard_after_prepares=(1, 1),
            partition_coordinator_after_prepares=6,
            heal_after=40,
        ),
    )
    first = run_stress(faulty, metrics=metrics, tracer=tracer)
    second = run_stress(faulty)
    reproducible = (
        first.history_text == second.history_text
        and first.journals == second.journals
    )
    coord = first.cluster.coordinator
    matrix_ok = (
        first.cluster.crashes >= 1
        and first.cluster.restarts >= 1
        and coord.retransmits >= 1
        and coord.decisions["commit"] >= 1
    )

    single = StressConfig(
        scheduler=args.scheduler,
        clients=3,
        txns_per_client=8,
        seed=args.seed,
        network=NetworkConfig(
            drop=0.05, duplicate=0.05, min_delay=1, max_delay=4
        ),
    )
    solo = run_stress(single)
    one = run_stress(replace(single, cluster=ClusterConfig(shards=1)))
    equivalent = (
        one.history_text == solo.history_text
        and one.journals == solo.journals
    )

    replica_ok, replica_lines = _replica_selftest(args)

    ok = (
        reproducible and matrix_ok and equivalent and first.all_certified
        and replica_ok
    )
    print(first.summary(), file=out)
    print(
        "2pc decisions          : "
        f"commit={coord.decisions['commit']} "
        f"abort={coord.decisions['abort']} "
        f"retransmits={coord.retransmits}",
        file=out,
    )
    print(
        f"fault matrix           : {'exercised' if matrix_ok else 'NOT HIT'}",
        file=out,
    )
    print(
        f"reproducible           : {'yes' if reproducible else 'NO'}",
        file=out,
    )
    print(
        "shards=1 == single     : "
        f"{'byte-identical' if equivalent else 'DIVERGED'}",
        file=out,
    )
    for line in replica_lines:
        print(line, file=out)
    print(f"selftest               : {'ok' if ok else 'FAILED'}", file=out)
    _flush_observability(args, metrics, tracer, out)
    return 0 if ok else 1


def _replica_selftest(args):
    """The replica-lag fault matrix: backup crash mid-catch-up, a
    partitioned primary serving stale replica reads, and promote-backup
    via a ShardMap change — each seeded, each replayed byte for byte."""
    from .service import (
        ClusterConfig,
        MapChange,
        NetworkConfig,
        SessionGuarantees,
        StressConfig,
        run_stress,
    )

    net = NetworkConfig(drop=0.05, duplicate=0.05, min_delay=1, max_delay=4)

    # Backup crash mid-catch-up, guarantees enforced (causal, redirect):
    # the fault fires, the run replays byte for byte, and no session
    # guarantee is ever violated.  Declared PL-2: causal sessions still
    # permit globally stale (lagging-snapshot) reads, which cap the
    # natural level below PL-3 on many seeds.
    crash_cfg = StressConfig(
        scheduler="locking", level="PL-2", clients=4, txns_per_client=10,
        keys=8, ops_per_txn=2, seed=args.seed, network=net,
        cluster=ClusterConfig(
            shards=2, replicas=2,
            crash_replica_after_applies=(0, 0, 10),
            replica_restart_delay=25,
        ),
        read_preference="replica",
        session_guarantees=SessionGuarantees(causal=True),
        read_only_fraction=0.5,
    )
    c1 = run_stress(crash_cfg)
    c2 = run_stress(crash_cfg)
    backup = c1.cluster.replica_of(0, 0)
    crash_ok = (
        c1.history_text == c2.history_text
        and c1.journals == c2.journals
        and c1.ops == c2.ops
        and backup is not None
        and backup.crashes >= 1
        and backup.restarts >= 1
        and not c1.session_violations
        and c1.all_certified
    )

    # Partitioned primary with stale-by-choice replica reads (guarantees
    # off, slow replication): the DSG checker still certifies every
    # commit at its declared PL-2 while the client-side record
    # accumulates violation witnesses — the explained divergence.
    stale_cfg = StressConfig(
        scheduler="locking", level="PL-2", clients=4, txns_per_client=10,
        keys=4, ops_per_txn=2, seed=args.seed, network=net,
        cluster=ClusterConfig(
            shards=2, replicas=2,
            replication_every=12, replication_lag=(4, 10),
            partition_primary_after_commits=(1, 5), heal_after=60,
        ),
        read_preference="replica",
        read_only_fraction=0.5,
    )
    s1 = run_stress(stale_cfg)
    s2 = run_stress(stale_cfg)
    stale_verdict = s1.opcheck()
    stale_ok = (
        s1.history_text == s2.history_text
        and s1.ops == s2.ops
        and s1.cluster.network.counters["lost_partition"] >= 1
        and len(s1.session_violations) >= 1
        and s1.all_certified
        # Any opcheck divergence must come with stale-read witnesses —
        # the *explained* divergence (passing is legitimate too: session
        # floors are per-shard offsets, coarser than per-object values).
        and (stale_verdict.ok
             or all(f["witnesses"] for f in stale_verdict.failures))
    )

    # Promote a backup to primary via a scheduled ShardMap change; all
    # reads at the primaries, so opcheck and the DSG must agree on
    # strict serializability.
    promote_cfg = StressConfig(
        scheduler="locking", clients=4, txns_per_client=10, keys=8,
        ops_per_txn=2, seed=args.seed, network=net,
        cluster=ClusterConfig(
            shards=2, replicas=2,
            map_changes=(
                MapChange(kind="promote", after_commits=8, shard=0,
                          replica=1),
            ),
        ),
    )
    p1 = run_stress(promote_cfg)
    p2 = run_stress(promote_cfg)
    promote_verdict = p1.opcheck()
    promote_ok = (
        p1.history_text == p2.history_text
        and p1.journals == p2.journals
        and p1.cluster.shards[0].name == "shard0.r2"
        and promote_verdict.ok
        and p1.all_certified
    )

    lines = [
        "backup crash+catch-up  : "
        + ("replayed, 0 violations" if crash_ok else "FAILED"),
        "partitioned primary    : "
        + (
            f"{len(s1.session_violations)} stale witnesses, "
            + ("opcheck diverged (explained)" if not stale_verdict.ok
               else "opcheck agreed")
            if stale_ok else "FAILED"
        ),
        "promote via shard map  : "
        + ("opcheck+DSG agree" if promote_ok else "FAILED"),
    ]
    return crash_ok and stale_ok and promote_ok, lines


def _run_cluster_stress_cmd(args, out) -> int:
    """Seeded stress over a sharded cluster; ``--selftest`` runs the
    cross-shard fault matrix and the shards=1 equivalence check."""
    from .service import run_stress

    metrics, tracer = _observability_sinks(args)
    if args.selftest:
        return _cluster_selftest(args, metrics, tracer, out)
    try:
        result = run_stress(
            _stress_config(args, cluster=_cluster_config(args)),
            metrics=metrics,
            tracer=tracer,
        )
    except (KeyError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(result.summary(), file=out)
    cluster = result.cluster
    coord = cluster.coordinator
    print(
        f"shards                 : {args.shards} "
        f"(map v{cluster.shard_map.version})",
        file=out,
    )
    print(
        "2pc decisions          : "
        f"commit={coord.decisions['commit']} "
        f"abort={coord.decisions['abort']} "
        f"retransmits={coord.retransmits}",
        file=out,
    )
    if args.replicas:
        counters = cluster.counters
        print(
            f"replication            : replicas={args.replicas}/shard "
            f"serves={counters['replica_serves']} "
            f"lagging={counters['replica_lagging']} "
            f"applied={counters['replica_applied']}",
            file=out,
        )
        print(
            "session violations     : "
            f"{len(result.session_violations)} witnessed",
            file=out,
        )
        verdict = result.opcheck()
        print(
            "opcheck                : "
            f"{'strict-serializable' if verdict.ok else 'DIVERGED'} "
            f"({verdict.states_explored} states)",
            file=out,
        )
        if not verdict.ok:
            print(verdict.explain(), file=out)
    if args.journal:
        print("\nclient journals:", file=out)
        print(result.journal_text(), file=out)
    if args.history:
        print("\nhistory:", file=out)
        print(result.history_text, file=out)
    _flush_observability(args, metrics, tracer, out)
    return 0 if result.all_certified else 1


def _capacity_slos(args) -> tuple:
    """The SLO tuple the ``--slo-*`` flags describe."""
    from .observability import SLO

    slos = []
    if args.slo_p99 is not None:
        slos.append(
            SLO(name="p99-commit", kind="latency", threshold=args.slo_p99,
                verb="txn", q=99.0)
        )
    if args.slo_certified is not None:
        slos.append(
            SLO(name="certified-fraction", kind="certified_fraction",
                threshold=args.slo_certified)
        )
    if args.slo_queue is not None:
        slos.append(
            SLO(name="queue-depth", kind="queue_depth",
                threshold=args.slo_queue)
        )
    return tuple(slos)


def _capacity_report(args, kwargs):
    """One sweep → (CapacityResult, RunReport with the capacity section)."""
    from .observability.traceview import build_run_report
    from .service import build_capacity_report, run_capacity

    sweep = run_capacity(**kwargs)
    knee = sweep.knee or sweep.rungs[-1]
    report = build_run_report(
        result=knee.stress,
        config=sweep.config,
        title=(
            f"capacity sweep scheduler={kwargs['scheduler']} "
            f"seed={kwargs['seed']}"
        ),
        capacity=build_capacity_report(sweep),
    )
    return sweep, report


def _run_capacity_cmd(args, out) -> int:
    """Offered-load capacity sweep; ``--selftest`` verifies the report is
    deterministic and well-formed on a small fixed ladder."""
    from .observability import SLO
    from .service import AdmissionConfig, NetworkConfig

    if args.selftest:
        kwargs = dict(
            rates=[0.03, 0.08, 0.16],
            horizon=500,
            seed=args.seed,
            scheduler=args.scheduler,
            clients=4,
            keys=6,
            ops_per_txn=2,
            admission=AdmissionConfig(max_active=3, retry_after=8),
            zipf_theta=0.9,
            slos=_capacity_slos(args)
            or (
                SLO(name="p99-commit", kind="latency", threshold=400,
                    verb="txn"),
            ),
            window=200,
            sample_every=50,
        )
        first_sweep, first = _capacity_report(args, kwargs)
        _second_sweep, second = _capacity_report(args, kwargs)
        text = first.to_markdown()
        reproducible = text == second.to_markdown()
        committed = sum(r.committed for r in first_sweep.rungs)
        shed = sum(r.shed for r in first_sweep.rungs)
        sections_ok = all(
            marker in text
            for marker in ("## Capacity", "### SLO verdicts",
                           "### Contention heatmap")
        )
        ok = reproducible and sections_ok and committed > 0 and shed > 0
        print(
            f"rungs                  : {len(first_sweep.rungs)}", file=out
        )
        print(f"committed (all rungs)  : {committed}", file=out)
        print(f"shed (all rungs)       : {shed}", file=out)
        knee = first_sweep.knee
        print(
            "saturation knee        : "
            + (f"rate={knee.rate:g}/tick" if knee is not None else "none"),
            file=out,
        )
        print(
            f"reproducible           : {'yes' if reproducible else 'NO'}",
            file=out,
        )
        print(f"selftest               : {'ok' if ok else 'FAILED'}", file=out)
        return 0 if ok else 1

    try:
        rates = [float(r) for r in args.rates.split(",") if r.strip()]
    except ValueError:
        print(f"error: bad --rates {args.rates!r}", file=sys.stderr)
        return 2
    if not rates:
        print("error: --rates named no offered loads", file=sys.stderr)
        return 2
    admission = None
    if args.max_active or args.certify_every > 1 or args.on_uncertified != "ignore":
        admission = AdmissionConfig(
            max_active=args.max_active,
            retry_after=args.retry_after,
            certify_every=args.certify_every,
            on_uncertified=args.on_uncertified,
        )
    kwargs = dict(
        rates=rates,
        horizon=args.horizon,
        seed=args.seed,
        scheduler=args.scheduler,
        level=args.level,
        clients=args.clients,
        keys=args.keys,
        ops_per_txn=args.ops,
        network=NetworkConfig(
            drop=args.drop,
            duplicate=args.duplicate,
            min_delay=args.min_delay,
            max_delay=args.max_delay,
        ),
        admission=admission,
        zipf_theta=args.zipf,
        slos=_capacity_slos(args),
        window=args.window,
        sample_every=args.sample_every,
        trace=args.heatmap,
    )
    try:
        sweep, report = _capacity_report(args, kwargs)
    except (KeyError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(
        report.to_json() if args.format == "json" else report.to_markdown(),
        file=out,
    )
    return 0 if sweep.all_slos_ok else 1


def _dossier_workload_config(args):
    """The seeded replicated-cluster workload the ``dossier`` and
    ``cluster-report`` commands run: stale-by-choice replica reads under
    faults, which reliably latches phenomena for the recorder."""
    from .service import ClusterConfig, NetworkConfig, StressConfig

    lo, _, hi = args.replication_lag.partition(":")
    return StressConfig(
        scheduler=args.scheduler,
        level=args.level,
        clients=args.clients,
        txns_per_client=args.txns,
        keys=args.keys,
        ops_per_txn=args.ops,
        seed=args.seed,
        network=NetworkConfig(
            drop=args.drop,
            duplicate=args.duplicate,
            min_delay=args.min_delay,
            max_delay=args.max_delay,
        ),
        cluster=ClusterConfig(
            shards=args.shards,
            replicas=args.replicas,
            replication_every=args.replication_every,
            replication_lag=(int(lo), int(hi or lo)),
            partition_primary_after_commits=(1, 5) if args.replicas else None,
            heal_after=60,
        ),
        read_preference=args.read_preference if args.replicas else "primary",
        read_only_fraction=args.read_only_fraction,
    )


def _run_dossier_workload(args):
    """One instrumented run of the dossier workload; returns the result
    (its ``flight`` holds the recorder)."""
    from .observability import FlightRecorder, MetricsRegistry, Tracer
    from .service import run_stress

    return run_stress(
        _dossier_workload_config(args),
        metrics=MetricsRegistry(),
        tracer=Tracer(),
        flight=FlightRecorder(capacity=getattr(args, "capacity", 256)),
    )


def _dossier_witness_covered(dossier) -> bool:
    """Every witness transaction has spans in the dossier's trace slice."""
    seen = set()
    for record in dossier["trace_slice"]:
        attrs = record.get("attrs") or {}
        if attrs.get("tid") is not None:
            seen.add(attrs["tid"])
        seen.update(attrs.get("tids") or ())
    return set(dossier["witness_tids"]) <= seen


def _run_dossier_cmd(args, out) -> int:
    """Run the dossier workload and render what the recorder captured."""
    import json

    from .observability import dossier_json, render_dossier
    from .service import run_stress

    if args.selftest:
        first = _run_dossier_workload(args)
        if args.opcheck:
            first.flight.opcheck_dossier(first)
        second = _run_dossier_workload(args)
        if args.opcheck:
            second.flight.opcheck_dossier(second)
        bare = run_stress(_dossier_workload_config(args))
        a = [dossier_json(d) for d in first.dossiers()]
        b = [dossier_json(d) for d in second.dossiers()]
        reproducible = a == b
        covered = all(
            _dossier_witness_covered(d) for d in first.dossiers()
        )
        unobserved = (
            bare.history_text == first.history_text
            and bare.journals == first.journals
            and bare.certification == first.certification
        )
        captured = len(a) > 0
        ok = reproducible and covered and unobserved and captured
        print(f"dossiers captured      : {len(a)}", file=out)
        print(
            f"byte-identical reruns  : {'yes' if reproducible else 'NO'}",
            file=out,
        )
        print(
            f"witness spans covered  : {'yes' if covered else 'NO'}",
            file=out,
        )
        print(
            f"artifacts undisturbed  : {'yes' if unobserved else 'NO'}",
            file=out,
        )
        print(f"selftest               : {'ok' if ok else 'FAILED'}", file=out)
        return 0 if ok else 1

    result = _run_dossier_workload(args)
    if args.opcheck:
        result.flight.opcheck_dossier(result)
    dossiers = result.dossiers()
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(
                json.dumps(dossiers, sort_keys=True, indent=2) + "\n"
            )
        print(
            f"wrote {len(dossiers)} dossier(s) to {args.out}", file=out
        )
    if args.format == "json":
        for dossier in dossiers:
            print(dossier_json(dossier), file=out)
    else:
        if not dossiers:
            print("no anomaly latched; no dossier captured.", file=out)
        for i, dossier in enumerate(dossiers):
            if i:
                print("", file=out)
            print(render_dossier(dossier), file=out)
    return 0 if dossiers else 1


def _run_cluster_report_cmd(args, out) -> int:
    """Run the dossier workload and emit the unified run report (Cluster
    section included); optionally export per-shard Perfetto tracks."""
    from .observability import build_run_report, write_chrome_trace

    result = _run_dossier_workload(args)
    report = build_run_report(result=result, title="cluster run")
    if args.format == "json":
        print(report.to_json(), file=out)
    else:
        print(report.to_markdown(), file=out)
    if args.chrome_out:
        data = write_chrome_trace(
            result.tracer.records, args.chrome_out, cluster_tracks=True
        )
        print(
            f"wrote {len(data['traceEvents'])} Chrome trace events "
            f"(per-shard tracks) to {args.chrome_out}",
            file=out,
        )
    return 0


def _run_report_cmd(args, out) -> int:
    """Unified run report: from a live stress run (``--stress``) or from a
    previously recorded trace/metrics pair (``--trace``/``--metrics-file``)."""
    import json

    from .observability import read_trace
    from .observability.traceview import build_run_report

    if args.trace and not args.stress:
        try:
            records = read_trace(args.trace)
        except OSError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        metrics = None
        if args.metrics_file:
            try:
                with open(args.metrics_file, encoding="utf-8") as handle:
                    metrics = json.load(handle)
            except (OSError, ValueError) as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 2
        report = build_run_report(
            records, metrics=metrics, title=f"trace {args.trace}"
        )
    else:
        from .observability import MetricsRegistry, Tracer
        from .service import run_stress

        tracer = Tracer()
        registry = MetricsRegistry()
        try:
            result = run_stress(
                _stress_config(args), metrics=registry, tracer=tracer
            )
        except (KeyError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        if args.trace:
            from .observability import JsonlSink

            with JsonlSink(args.trace) as sink:
                for record in tracer.records:
                    sink(record)
        report = build_run_report(
            result=result,
            title=f"stress scheduler={args.scheduler} seed={args.seed}",
        )
    print(
        report.to_json() if args.format == "json" else report.to_markdown(),
        file=out,
    )
    return 0


def _run_trace(args, history, out) -> int:
    """Replay a history through the online monitor and the batch checker
    under one tracer; write the JSONL trace to ``--out`` or stdout."""
    import json

    from .observability import JsonlSink, Tracer, watching_analysis

    tracer = Tracer()
    with tracer.span("trace.replay", events=len(history.events)):
        analysis = watching_analysis(
            tracer, version_order_hint=history.version_order
        )
        for event in history.events:
            analysis.add(event)
        analysis.finish()
    check(history, tracer=tracer)
    if args.out:
        with JsonlSink(args.out) as sink:
            for record in tracer.records:
                sink(record)
        phenomena = sorted(
            {e["attrs"]["phenomenon"] for e in tracer.events("phenomenon")}
        )
        summary = f"wrote {len(tracer.records)} records to {args.out}"
        if phenomena:
            summary += f" (phenomena: {', '.join(phenomena)})"
        print(summary, file=out)
    else:
        for record in tracer.records:
            print(json.dumps(record, sort_keys=True), file=out)
    return 0


def _run_stats(args, history, out) -> int:
    """Check a history with a registry attached and print the metrics."""
    import json

    from .observability import MetricsRegistry

    registry = MetricsRegistry()
    registry.gauge("history_events", "events in the checked history").set(
        len(history.events)
    )
    registry.gauge(
        "history_transactions", "transactions in the checked history"
    ).set(len(history.tids))
    check(history, extensions=args.extensions, metrics=registry)
    if args.format == "json":
        print(json.dumps(registry.snapshot(), indent=2, sort_keys=True), file=out)
    elif args.format == "prometheus":
        print(registry.render_prometheus(), file=out)
    else:
        print(registry.render_text(), file=out)
    return 0


def _run_check_many(args, out) -> int:
    """Parse every file, check the batch (parallel by default), and print
    one summary line per history."""
    from .checker import check_many

    histories = []
    for path in args.files:
        try:
            with open(path, encoding="utf-8") as handle:
                text = handle.read()
            histories.append(parse_history(text, auto_complete=args.auto_complete))
        except (ReproError, OSError) as exc:
            print(f"error: {path}: {exc}", file=sys.stderr)
            return 2
    registry = None
    processes = args.processes
    if args.metrics:
        from .observability import MetricsRegistry

        registry = MetricsRegistry()
        processes = 1  # registries are in-process; see check_many docs
    reports = check_many(
        histories,
        processes=processes,
        chunksize=args.chunksize,
        extensions=args.extensions,
        metrics=registry,
    )
    width = max(len(path) for path in args.files)
    for path, report in zip(args.files, reports):
        level = report.strongest_level
        exhibited = [
            str(item.phenomenon) for item in report.phenomena() if item.present
        ]
        detail = f"  [{', '.join(exhibited)}]" if exhibited else ""
        print(
            f"{path:{width}}  {str(level) if level else 'none':>8}{detail}",
            file=out,
        )
    if registry is not None:
        print("\nmetrics:", file=out)
        print(registry.render_text(), file=out)
    return 0


def _run_corpus(out) -> int:
    """Check every documented verdict in the corpus; print the matrix."""
    from .core.canonical import ALL_CANONICAL
    from .workloads.anomalies import ALL_ANOMALIES

    corpus = ALL_CANONICAL + ALL_ANOMALIES
    columns = [
        IsolationLevel.PL_1,
        IsolationLevel.PL_2,
        IsolationLevel.PL_CS,
        IsolationLevel.PL_2PLUS,
        IsolationLevel.PL_2_99,
        IsolationLevel.PL_SI,
        IsolationLevel.PL_3,
    ]
    mismatches = 0
    checked = 0
    print(f"{'history':28}" + "".join(f"{str(c):>9}" for c in columns), file=out)
    for entry in corpus:
        report = check(entry.history, extensions=True)
        cells = []
        for level in columns:
            got = report.ok(level)
            expected = entry.provides.get(level)
            mark = "Y" if got else "-"
            if expected is not None:
                checked += 1
                if got != expected:
                    mismatches += 1
                    mark = "!"
            cells.append(f"{mark:>9}")
        print(f"{entry.name:28}" + "".join(cells), file=out)
    print(
        f"\n{checked} documented verdicts checked, {mismatches} mismatches",
        file=out,
    )
    return 0 if mismatches == 0 else 1
