"""Tests for classical anomaly naming (repro.checker.naming)."""

import pytest

import repro
from repro.checker.naming import name_cycle
from repro.core.phenomena import Analysis
from repro.workloads import anomalies as corpus


EXPECTED_NAMES = {
    "dirty-write": "dirty write",
    "dirty-read": "dirty read",
    "aborted-read-predicate": "dirty read (predicate)",
    "intermediate-read": "intermediate read",
    "circular-information-flow": "circular information flow",
    "lost-update": "lost update",
    "lost-cursor-update": "lost update",
    "fuzzy-read": "fuzzy read",
    "read-skew": "read skew",
    "write-skew": "write skew",
    "phantom-insert": "phantom",
}


class TestCorpusNames:
    @pytest.mark.parametrize("entry_name,expected", sorted(EXPECTED_NAMES.items()))
    def test_each_anomaly_gets_its_classical_name(self, entry_name, expected):
        entry = next(
            a for a in corpus.ALL_ANOMALIES if a.name == entry_name
        )
        names = [a.name for a in repro.check(entry.history).named_anomalies()]
        assert expected in names

    def test_clean_histories_name_nothing(self):
        for entry in (corpus.CLEAN_SERIAL, corpus.NON_SNAPSHOT_READ):
            assert repro.check(entry.history).named_anomalies() == []

    def test_names_deduplicated(self):
        rep = repro.check(corpus.LOST_UPDATE.history)
        names = [a.name for a in rep.named_anomalies()]
        assert len(names) == len(set(names))


class TestNameCycle:
    def cycle_of(self, text, phenomenon):
        analysis = Analysis(repro.parse_history(text))
        report = analysis.report(phenomenon)
        assert report.present
        return report.witnesses[0].cycle

    def test_paper_h1_is_read_skew(self):
        from repro.core.canonical import H1
        from repro.core.phenomena import Phenomenon

        analysis = Analysis(H1.history)
        cycle = analysis.report(Phenomenon.G2).witnesses[0].cycle
        assert name_cycle(cycle) == "read skew"

    def test_h_phantom_is_phantom(self):
        from repro.core.canonical import H_PHANTOM
        from repro.core.phenomena import Phenomenon

        analysis = Analysis(H_PHANTOM.history)
        cycle = analysis.report(Phenomenon.G2).witnesses[0].cycle
        assert name_cycle(cycle) == "phantom"


class TestExplainIntegration:
    def test_explain_lists_named_anomalies(self):
        text = repro.check(corpus.LOST_UPDATE.history.events and corpus.LOST_UPDATE.history).explain()
        assert "named anomalies" in text
        assert "lost update" in text

    def test_clean_history_omits_section(self):
        text = repro.check("w1(x1) c1").explain()
        assert "named anomalies" not in text


class TestEngineIntegration:
    def test_mvrc_lost_update_named(self):
        from repro.engine import Database, ReadCommittedMVScheduler

        db = Database(ReadCommittedMVScheduler())
        db.load({"x": 0})
        t1, t2 = db.begin(), db.begin()
        v1, v2 = t1.read("x"), t2.read("x")
        t1.write("x", v1 + 1)
        t2.write("x", v2 + 1)
        t1.commit()
        t2.commit()
        names = [a.name for a in repro.check(db.history()).named_anomalies()]
        assert "lost update" in names


class TestGeneralCycleNames:
    def test_three_transaction_anti_cycle(self):
        # Three rw edges around a triangle: not write skew (that needs
        # exactly two antis over two objects), so the general name applies.
        h = repro.parse_history(
            "r1(x0) r2(y0) r3(z0) w1(y1) w2(z2) w3(x3) c1 c2 c3 "
            "[x0 << x3, y0 << y1, z0 << z2]"
        )
        from repro.core.phenomena import Analysis, Phenomenon

        analysis = Analysis(h)
        cycle = analysis.report(Phenomenon.G2).witnesses[0].cycle
        assert name_cycle(cycle) == "anti-dependency cycle"

    def test_dirty_write_name_from_cycle(self):
        from repro.workloads.anomalies import DIRTY_WRITE
        from repro.core.phenomena import Analysis, Phenomenon

        cycle = Analysis(DIRTY_WRITE.history).report(Phenomenon.G0).witnesses[0].cycle
        assert name_cycle(cycle) == "dirty write"
