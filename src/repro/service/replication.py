"""Primary/backup shard replication with session-guarantee watermarks.

Each shard's primary keeps a shippable copy of its durable WAL (the
:attr:`~repro.engine.recorder.HistoryRecorder.repl_log`) and pumps the
unacknowledged suffix to K :class:`ReplicaServer` backups over the same
:class:`~repro.service.network.SimulatedNetwork` the clients use.  The
stream is *seeded-lag, lossless-in-order*: each batch travels on a
fault-free timer with a delay drawn from a dedicated per-shard RNG, so
replication never perturbs the client traffic's fault schedule — but
batches still respect crashes and partitions (delivery checks both
endpoints), which is how a partitioned primary leaves its backups
serving stale state.

A backup applies entries in log order into its own durable recorder copy
and a volatile value table, acknowledges its applied offset, and serves
plain (non-locking) reads at whatever offset it has reached.  Every read
reply carries ``(shard, offset)`` — the provenance a
:class:`SessionVector` needs to enforce (or witness violations of) the
Bayou session guarantees; see
:class:`~repro.service.config.SessionGuarantees`.

Offsets are *prefix lengths* of the primary WAL: backup state at offset
``n`` is exactly the primary's first ``n`` events applied, so "replica A
is fresher than what this session saw" is the integer comparison
``applied >= watermark``.  The same abstraction expresses the mobile
engine's disconnected operation (:mod:`repro.engine.mobile`): a
tentative transaction's ``base_seq`` is a one-shard session vector.

Served reads are recorded in a separate observability recorder (not the
applied WAL copy) with their true version provenance, and merge into the
cluster's global history — the lagging-snapshot reads are exactly what
the global :class:`~repro.core.incremental.IncrementalAnalysis` then
certifies PL-SI / session levels over.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from ..engine.recorder import HistoryRecorder
from .network import SimulatedNetwork

__all__ = ["ReplicaServer", "SessionVector"]


class SessionVector:
    """A per-key watermark vector (key → replication-log offset).

    The client-side half of the session-guarantee protocol: ``observe``
    folds in offsets learned from replies, ``covers`` asks whether an
    offered offset satisfies the recorded floor.  Keys are opaque —
    shard indices for the cluster, a server name for the mobile engine.
    """

    __slots__ = ("offsets",)

    def __init__(self, offsets: Optional[Dict[Any, int]] = None) -> None:
        self.offsets: Dict[Any, int] = dict(offsets or {})

    def get(self, key: Any) -> int:
        """The floor recorded for ``key`` (0 when nothing observed)."""
        return self.offsets.get(key, 0)

    def observe(self, key: Any, offset: int) -> bool:
        """Fold in one observed offset; returns True if the floor rose."""
        if offset > self.offsets.get(key, 0):
            self.offsets[key] = offset
            return True
        return False

    def merge(self, other: "SessionVector | Dict[Any, int]") -> None:
        items = other.offsets if isinstance(other, SessionVector) else other
        for key, offset in items.items():
            self.observe(key, offset)

    def covers(self, key: Any, offset: int) -> bool:
        """Whether state at ``offset`` is at least as fresh as the floor."""
        return offset >= self.get(key)

    def copy(self) -> "SessionVector":
        return SessionVector(self.offsets)

    def as_dict(self) -> Dict[Any, int]:
        return dict(self.offsets)

    def __repr__(self) -> str:
        inner = ",".join(f"{k}:{v}" for k, v in sorted(self.offsets.items()))
        return f"<SessionVector {inner or 'empty'}>"


class ReplicaServer:
    """One shard backup: applies the primary's replication stream, serves
    plain reads at its applied offset.

    Durable state is the applied WAL copy (``wal``); the value table it
    serves from is volatile and rebuilt from the WAL on restart, so a
    crash mid-catch-up resumes from the durable applied offset — exactly
    like the primary's own recovery.  Reads it serves are recorded (with
    the stored version's true provenance) into a separate ``reads``
    recorder that merges into the cluster's global history.
    """

    def __init__(
        self,
        cluster,
        shard_index: int,
        ordinal: int,
        network: SimulatedNetwork,
        *,
        name: str,
    ) -> None:
        self.cluster = cluster
        self.shard_index = shard_index
        self.ordinal = ordinal
        self.network = network
        self.name = name
        self.up = True
        self.crashes = 0
        self.restarts = 0
        #: Durable applied prefix of the primary WAL (its own repl_log is
        #: kept live so a promoted backup can ship to its new peers and a
        #: restart can replay values without re-deriving commit installs).
        self.wal = HistoryRecorder()
        self.wal.enable_replication()
        #: Reads this backup served, merged into the global history.
        self.reads = HistoryRecorder()
        #: Network tick per served read (parallel to ``reads.events``).
        self.read_ticks: List[int] = []
        # Volatile serving state, lost on crash:
        #: obj -> (version, value, dead) of the latest applied commit.
        self._values: Dict[str, Tuple[Any, Any, bool]] = {}
        #: tid -> {obj: (version, value, dead)} of applied-but-uncommitted
        #: writes (the replay scratchpad).
        self._pending: Dict[int, Dict[str, Tuple[Any, Any, bool]]] = {}
        self.counters = {
            "serves": 0, "lagging": 0, "applied": 0, "dedup_hits": 0,
        }
        network.register_handler(name, self.handle)

    # ------------------------------------------------------------------
    # state
    # ------------------------------------------------------------------

    @property
    def applied(self) -> int:
        """Replication-log entries applied (the backup's offset)."""
        return len(self.wal.events)

    def _apply_values(self, entry: tuple) -> None:
        """Fold one log entry into the volatile value table."""
        ev, finals, _keys = entry
        kind = type(ev).__name__
        if kind == "Write":
            self._pending.setdefault(ev.tid, {})[ev.version.obj] = (
                ev.version, ev.value, ev.dead
            )
        elif kind == "Commit":
            staged = self._pending.pop(ev.tid, {})
            for obj, version in (finals or {}).items():
                _v, value, dead = staged.get(obj, (version, None, False))
                self._values[obj] = (version, value, dead)
        elif kind == "Abort":
            self._pending.pop(ev.tid, None)

    def apply(self, entry: tuple) -> None:
        """Apply one in-order replication-log entry (durable + volatile)."""
        self.wal.apply_entry(entry)
        self._apply_values(entry)
        self.counters["applied"] += 1

    # ------------------------------------------------------------------
    # crash / restart
    # ------------------------------------------------------------------

    def crash(self) -> None:
        """Lose the process: volatile value table and in-flight messages
        go, the durable WAL copy (and its applied offset) stays."""
        if not self.up:
            return
        self.crashes += 1
        self.up = False
        self._values.clear()
        self._pending.clear()
        self.network.down(self.name)
        self.network.flush(self.name)

    def restart(self) -> None:
        """Come back from the durable WAL copy: rebuild the value table by
        replaying the applied prefix, then resume catching up from the
        durable offset (the primary keeps re-shipping past our last ack)."""
        if self.up:
            return
        self.restarts += 1
        for entry in self.wal.repl_log or ():
            self._apply_values(entry)
        self.up = True
        self.network.up(self.name)

    def retire(self) -> None:
        """Stop serving as a backup (the endpoint is being promoted: a new
        :class:`~repro.service.cluster.ShardServer` takes over the name)."""
        self.up = False

    # ------------------------------------------------------------------
    # network entry point
    # ------------------------------------------------------------------

    def handle(
        self, payload: Dict[str, Any], src: str
    ) -> Optional[Dict[str, Any]]:
        kind = payload.get("kind")
        if kind == "repl":
            self._on_replicate(payload)
            return None
        if kind == "read":
            return self._on_read(payload)
        if kind == "ping":
            return {"ok": True, "rid": payload.get("rid"),
                    "shard": self.shard_index, "offset": self.applied}
        return {"error": "bad-request", "rid": payload.get("rid"),
                "reason": f"replica cannot serve {kind!r}"}

    def _on_replicate(self, payload: Dict[str, Any]) -> None:
        """Apply a shipped batch idempotently: entries below our applied
        offset are duplicates (re-pumped suffix), entries beyond a gap
        wait for the re-ship; either way we ack our true offset so the
        primary advances (or rewinds) its view of us."""
        start = payload["from"]
        entries = payload["entries"]
        from_offset = self.applied
        applied_tids: List[int] = []
        for pos, entry in enumerate(entries, start=start):
            if pos < self.applied:
                continue
            if pos > self.applied:
                break  # gap: a lost earlier batch; the pump re-ships
            self.apply(entry)
            applied_tids.append(entry[0].tid)
            self.cluster._note_replica_apply(self)
            if not self.up:
                # Crashed mid-catch-up: no ack, state is durable.
                self._trace_apply(from_offset, applied_tids)
                return
        self._trace_apply(from_offset, applied_tids)
        self.network.timer(
            payload["primary"],
            {
                "kind": "repl-ack",
                "shard": self.shard_index,
                "replica": self.ordinal,
                "applied": self.applied,
            },
            delay=1,
            src=self.name,
        )

    def _trace_apply(self, from_offset: int, tids: List[int]) -> None:
        """Observation only: a ``repl.apply`` span per batch that advanced
        this backup, plus the per-(shard, replica) applied counter."""
        if not tids:
            return  # pure duplicate re-ship: nothing advanced
        tracer = self.cluster.tracer
        if tracer is not None:
            tracer.span(
                "repl.apply",
                stack=False,
                shard=self.shard_index,
                replica=self.ordinal,
                offset=from_offset,
                applied=self.applied,
                count=self.applied - from_offset,
                tids=sorted(set(tids)),
            ).end()
        metrics = self.cluster.metrics
        if metrics is not None:
            metrics.counter(
                "service_replication_applied_total",
                "replication-log entries applied at backups",
            ).inc(
                self.applied - from_offset,
                shard=self.shard_index,
                replica=self.ordinal,
            )

    # ------------------------------------------------------------------
    # serving reads
    # ------------------------------------------------------------------

    def _on_read(self, payload: Dict[str, Any]) -> Optional[Dict[str, Any]]:
        session = payload["session"]
        rid = payload["rid"]
        ctx = payload.get("trace")
        cache = self.cluster._replica_replies[self.shard_index]
        sess = cache.setdefault(session, {"replies": {}, "acked": -1})
        acked = payload.get("acked")
        if acked is not None and acked > sess["acked"]:
            sess["acked"] = acked
            for old in [r for r in sess["replies"] if r <= acked]:
                del sess["replies"][old]
        cached = sess["replies"].get(rid)
        if cached is not None:
            # Duplicate delivery: re-send the cached reply carrying the
            # *original* request's trace context (``setdefault``, exactly
            # like ``Server.handle``), so the retransmitted reply's
            # ``net.msg`` span still parents under the request that first
            # produced it.
            self.counters["dedup_hits"] += 1
            if ctx is not None:
                cached.setdefault("trace", ctx)
            return cached
        if rid <= sess["acked"]:
            return self._reply(ctx, {"error": "stale", "rid": rid})
        obj = payload["obj"]
        owner = self.cluster.shard_map.owner(route_key(obj))
        if owner != self.cluster.endpoint(self.shard_index):
            return self._reply(ctx, {
                "error": "moved",
                "owner": owner,
                "map_version": self.cluster.shard_map.version,
                "rid": rid,
            })
        floor = payload.get("min_offset")
        stored = self._values.get(obj)
        if stored is None or (floor is not None and self.applied < floor):
            # Behind the session's watermark (or the object has not
            # replicated here at all): the client decides — wait for
            # catch-up, redirect to the primary, or (weak levels) it never
            # sent a floor and reads stale by choice.
            self.counters["lagging"] += 1
            return self._reply(ctx, {
                "error": "lagging",
                "rid": rid,
                "applied": self.applied,
                "required": floor if stored is not None else self.applied + 1,
                "missing": stored is None,
            })
        version, value, dead = stored
        tid = payload.get("tid")
        if tid is not None:
            self.reads.read(tid, version, value=value)
            self.read_ticks.append(self.network.now)
        self.counters["serves"] += 1
        metrics = self.cluster.metrics
        if metrics is not None:
            primary = self.cluster.shards[self.shard_index]
            behind = len(primary.recorder.repl_log or ()) - self.applied
            if behind > 0:
                metrics.counter(
                    "service_stale_reads",
                    "replica reads served behind the primary's durable log",
                ).inc(shard=self.shard_index, replica=self.ordinal)
        reply = {
            "ok": True,
            "rid": rid,
            "value": None if dead else value,
            "shard": self.shard_index,
            "offset": self.applied,
        }
        sess["replies"][rid] = reply
        return self._reply(ctx, reply)

    @staticmethod
    def _reply(
        ctx: Optional[Dict[str, Any]], reply: Dict[str, Any]
    ) -> Dict[str, Any]:
        """Echo the request's trace context on a freshly built reply (so
        the reply's ``net.msg`` span parents under the request span)."""
        if ctx is not None:
            reply.setdefault("trace", ctx)
        return reply

    def __repr__(self) -> str:
        return (
            f"<ReplicaServer {self.name} applied={self.applied} "
            f"up={self.up}>"
        )


def route_key(obj: str) -> str:
    """The string a keyed operation routes by: the relation for namespaced
    objects (``"emp:3"`` → ``"emp"``), the object itself for bare keys."""
    rel, sep, _ = obj.partition(":")
    return rel if sep else obj
