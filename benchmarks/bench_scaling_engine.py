"""SCALE-ENGINE — engine throughput versus scheduler and fleet size.

Companion to the checker-scaling bench: how do the schedulers behave as the
number of concurrent programs grows?  Each parametrized case runs one full
simulation (workload generation + interleaving + history materialisation +
validation); pytest-benchmark reports the wall-clock, and the assertions pin
the functional shape: every program commits and the emitted history provides
the scheduler's level.

Two liveness lessons are baked into the engine because this bench caught
their absence:

* read-modify-write sequences use ``SELECT ... FOR UPDATE`` (the ``Read``
  step's ``for_update``) — without it, hot-key increments drown in lock
  *upgrade* deadlocks (765 deadlocks for 32 programs when first measured);
* the deadlock detector victimises by **original** age — the naive
  abort-the-current-youngest rule starves restarted victims, which always
  re-enter with the largest tid.
"""

from __future__ import annotations

import pytest

import repro
from repro.core.levels import IsolationLevel as L
from repro.engine import (
    Database,
    LockingScheduler,
    OptimisticScheduler,
    ReadCommittedMVScheduler,
    Simulator,
    SnapshotIsolationScheduler,
)
from repro.workloads import WorkloadConfig, random_programs

FLEETS = [4, 8, 16, 32]

SCHEDULERS = [
    ("2pl-serializable", lambda: LockingScheduler("serializable"), L.PL_3),
    ("2pl-wound-wait", lambda: LockingScheduler("serializable", deadlock="wound-wait"), L.PL_3),
    ("occ", OptimisticScheduler, L.PL_3),
    ("snapshot-isolation", SnapshotIsolationScheduler, L.PL_SI),
    ("mv-read-committed", ReadCommittedMVScheduler, L.PL_2),
]


@pytest.mark.parametrize("n_programs", FLEETS)
@pytest.mark.parametrize(
    "name,factory,level", SCHEDULERS, ids=[s[0] for s in SCHEDULERS]
)
def test_engine_scaling(benchmark, name, factory, level, n_programs):
    cfg = WorkloadConfig(
        n_programs=n_programs,
        steps_per_program=3,
        n_keys=max(4, n_programs // 2),
        hot_fraction=0.4,
        write_fraction=0.5,
    )

    def run():
        db = Database(factory())
        db.load(cfg.initial_state())
        result = Simulator(
            db, random_programs(cfg, seed=1), seed=1, max_retries=50
        ).run()
        return db.history(), result

    history, result = benchmark.pedantic(run, iterations=1, rounds=3)
    assert result.committed_count == n_programs
    assert repro.satisfies(history, level).ok
