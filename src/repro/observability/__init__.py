"""End-to-end observability: metrics, tracing, and phenomenon provenance.

Three dependency-free pieces (see ``docs/observability.md`` for the metric
catalogue and record schemas):

* :class:`MetricsRegistry` — counters, gauges and histograms with labels,
  shared by every instrumented component (engine schedulers, recorder,
  lock manager, store, incremental monitor, batch checker).  Components
  default to ``metrics=None`` and skip instrumentation entirely — disabled
  observability costs nothing.
* :class:`Tracer` — structured span/event records (run → transaction →
  operation; check → extraction → cycle search) with attachable sinks;
  :class:`JsonlSink` writes JSONL, :func:`read_trace`/:func:`span_tree`
  parse it back and reconstruct the tree.
* provenance — :func:`phenomenon_hook`/:func:`watching_analysis` wire a
  tracer into the engine's online monitor so a latched phenomenon records
  the witness cycle's edges and the raw events behind them.
* :class:`FlightRecorder` — bounded per-shard rings of recent trace
  records; a latched phenomenon, SLO violation, or failed operation
  check dumps an anomaly **dossier** (witness cycle + trace slice +
  replica/2PC state) as one deterministic JSON artifact.

Quick start::

    from repro.engine import Database, LockingScheduler, Simulator
    from repro.observability import MetricsRegistry, Tracer, watching_analysis

    metrics, tracer = MetricsRegistry(), Tracer()
    db = Database(LockingScheduler("serializable"))
    db.load({"x": 0, "y": 0})
    result = Simulator(
        db, programs, metrics=metrics, tracer=tracer,
        monitor=watching_analysis(tracer, order_mode="event"),
    ).run()
    print(metrics.render_text())        # aborts by reason, lock waits, ...
    print(tracer.events("phenomenon"))  # provenance of latched phenomena
"""

from .flight import FlightRecorder, dossier_json, render_dossier, trace_slice
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .provenance import (
    DEFAULT_WATCH,
    phenomenon_hook,
    provenance_record,
    watching_analysis,
    witness_cycle,
)
from .trace import JsonlSink, Span, Tracer, TraceRecords, read_trace, span_tree
from .windows import (
    SLO,
    SLOStatus,
    WindowedCounter,
    WindowedTelemetry,
    WindowedValues,
)
from .traceview import (
    RunReport,
    build_run_report,
    cluster_summary,
    contention_summary,
    contention_table,
    critical_path,
    cross_shard_critical_path,
    from_chrome_trace,
    latency_table,
    replication_lag_timeline,
    to_chrome_trace,
    twopc_summary,
    verb_latencies,
    waterfall,
    write_chrome_trace,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Tracer",
    "TraceRecords",
    "Span",
    "JsonlSink",
    "read_trace",
    "span_tree",
    "witness_cycle",
    "provenance_record",
    "phenomenon_hook",
    "watching_analysis",
    "DEFAULT_WATCH",
    "SLO",
    "SLOStatus",
    "WindowedCounter",
    "WindowedTelemetry",
    "WindowedValues",
    "FlightRecorder",
    "trace_slice",
    "dossier_json",
    "render_dossier",
    "RunReport",
    "build_run_report",
    "cluster_summary",
    "replication_lag_timeline",
    "twopc_summary",
    "contention_summary",
    "contention_table",
    "critical_path",
    "cross_shard_critical_path",
    "from_chrome_trace",
    "latency_table",
    "to_chrome_trace",
    "verb_latencies",
    "waterfall",
    "write_chrome_trace",
]
