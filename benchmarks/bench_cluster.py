"""Cluster guard: sharding must not tax the degenerate case, and the
scaling table must stay honest.

Two pins:

* **single-shard overhead** — a ``ClusterConfig(shards=1)`` run is
  byte-identical to the plain single-``Server`` run (the equivalence
  suite pins the bytes); here we pin the *cost*: the routing facade, the
  shard map lookups and the cluster bookkeeping must stay within a small
  multiple of the plain service run on the same seeded workload.
* **shard-count scaling table** — one seeded cross-shard stress run per
  shard count, the regenerated table recording commits, 2PC decisions,
  retransmits and the certification verdict.  Every row must end fully
  certified: sharding costs messages, never isolation.
"""

from __future__ import annotations

import time
from dataclasses import replace

import pytest

from repro.service import (
    ClusterConfig,
    NetworkConfig,
    StressConfig,
    run_stress,
)

_BASE = StressConfig(
    scheduler="locking",
    clients=4,
    txns_per_client=15,
    keys=8,
    ops_per_txn=2,
    seed=17,
    network=NetworkConfig(min_delay=1, max_delay=3),
)


def _best_of(config: StressConfig, rounds: int = 3) -> float:
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        result = run_stress(config)
        best = min(best, time.perf_counter() - start)
        assert result.all_certified
    return best


@pytest.mark.benchguard
def test_single_shard_overhead_bounded():
    plain = _best_of(_BASE)
    sharded = _best_of(replace(_BASE, cluster=ClusterConfig(shards=1)))
    # The cluster path adds per-request routing (one CRC-32 + map lookup),
    # event-tick bookkeeping and the facade indirection — pin it to a
    # small multiple of the plain service, with an absolute floor so
    # timer noise on a fast run can't flake the guard.
    assert sharded < max(plain * 3, plain + 0.05), (
        f"shards=1 run {sharded * 1000:.1f} ms vs single-server "
        f"{plain * 1000:.1f} ms"
    )


def test_shard_scaling_table(record_table):
    rows = [
        f"{'shards':>6} {'commits':>7} {'2pc-commit':>10} {'2pc-abort':>9} "
        f"{'retrans':>7} {'ticks':>6} {'certified':>9}"
    ]
    for shards in (1, 2, 3, 4):
        result = run_stress(
            replace(_BASE, cluster=ClusterConfig(shards=shards))
        )
        assert result.committed == 60
        assert result.all_certified, f"shards={shards}: certification failed"
        coord = result.cluster.coordinator
        assert coord.pending == 0
        if shards > 1:
            # The workload genuinely crosses shards.
            assert coord.decisions["commit"] > 0
        rows.append(
            f"{shards:6d} {result.committed:7d} "
            f"{coord.decisions['commit']:10d} {coord.decisions['abort']:9d} "
            f"{coord.retransmits:7d} {result.ticks:6d} "
            f"{'yes' if result.all_certified else 'NO':>9}"
        )
    record_table("cluster_scaling", "\n".join(rows))
