"""The public API surface stays coherent: every top-level export is real,
documented in docs/API.md, and listed in ``__all__`` exactly once; the
legacy ``run_stress`` keyword interface survives as a deprecation shim
over :class:`StressConfig`."""

from pathlib import Path

import pytest

import repro
import repro.service as service

API_MD = Path(__file__).resolve().parent.parent / "docs" / "API.md"


class TestTopLevelSurface:
    def test_all_entries_exist(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.__all__ lists missing {name}"

    def test_all_has_no_duplicates(self):
        assert len(repro.__all__) == len(set(repro.__all__))

    def test_all_matches_documented_surface(self):
        text = API_MD.read_text(encoding="utf-8")
        missing = [
            name
            for name in repro.__all__
            if name != "__version__" and name not in text
        ]
        assert not missing, (
            f"repro.__all__ names not documented in docs/API.md: {missing}"
        )

    def test_cluster_surface_reexported(self):
        assert repro.connect_cluster is service.connect_cluster
        assert repro.ClusterConfig is service.ClusterConfig
        assert repro.ShardMap is service.ShardMap
        assert repro.StressConfig is service.StressConfig


class TestServiceSurface:
    def test_all_entries_exist(self):
        for name in service.__all__:
            assert hasattr(service, name)

    def test_all_sorted(self):
        assert list(service.__all__) == sorted(service.__all__)

    def test_configs_are_frozen_keyword_only(self):
        for cls in (repro.StressConfig, repro.ClusterConfig):
            cfg = cls()
            with pytest.raises(AttributeError):
                cfg.seed = 1
            with pytest.raises(TypeError):
                cls(1)  # positional args rejected: keyword-only


class TestLegacyKwargsShim:
    def _reset_warn_once(self):
        import repro.service.stress as stress_mod

        stress_mod._LEGACY_KWARGS_WARNED = False

    def test_legacy_kwargs_warn_and_still_work(self):
        self._reset_warn_once()
        with pytest.warns(DeprecationWarning, match="StressConfig"):
            legacy = repro.run_stress(clients=2, txns_per_client=4, seed=5)
        modern = repro.run_stress(
            repro.StressConfig(clients=2, txns_per_client=4, seed=5)
        )
        assert legacy.history_text == modern.history_text
        assert legacy.journals == modern.journals

    def test_warning_fires_once(self):
        import warnings

        self._reset_warn_once()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            repro.run_stress(clients=1, txns_per_client=2)
            repro.run_stress(clients=1, txns_per_client=2)
        deprecations = [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]
        assert len(deprecations) == 1

    def test_config_plus_kwargs_rejected(self):
        with pytest.raises(TypeError, match="both"):
            repro.run_stress(repro.StressConfig(), clients=2)

    def test_unknown_kwarg_rejected(self):
        self._reset_warn_once()
        with pytest.warns(DeprecationWarning):
            with pytest.raises(TypeError):
                repro.run_stress(not_a_knob=1)
