"""Pipelined delivery must not change any observable of a stress run.

``run_stress(pipeline=True)`` drains the network's whole due message
batch in one :meth:`SimulatedNetwork.drain_due` sweep; ``pipeline=False``
delivers the same batch one :meth:`step` at a time.  Both drivers are
tick-synchronized — the full batch lands before any client polls — so the
message schedule and the fault RNG draw order are identical by
construction.  These tests pin the consequence: per seed, pipelining on
vs off produces byte-identical histories, journals, traces and counters.
"""

import pytest

from repro.observability import Tracer
from repro.service import NetworkConfig, run_stress

FAULTY = NetworkConfig(drop=0.05, duplicate=0.05, min_delay=1, max_delay=4)


def _pair(**overrides):
    """One run with pipelining on and one with it off, same seed."""
    kwargs = dict(
        clients=3,
        txns_per_client=10,
        keys=6,
        seed=13,
        network=FAULTY,
    )
    kwargs.update(overrides)
    on = run_stress(pipeline=True, **kwargs)
    off = run_stress(pipeline=False, **kwargs)
    return on, off


def _strip_pipeline(config):
    clean = dict(config)
    clean.pop("pipeline")
    return clean


@pytest.mark.parametrize("seed", [0, 7, 13, 42])
def test_histories_and_journals_identical(seed):
    on, off = _pair(seed=seed)
    assert on.history_text == off.history_text
    assert on.journals == off.journals
    assert on.journal_text() == off.journal_text()
    assert on.certification == off.certification
    assert on.network_counters == off.network_counters
    assert on.server_counters == off.server_counters
    assert on.committed == off.committed
    assert on.ticks == off.ticks
    assert _strip_pipeline(on.config) == _strip_pipeline(off.config)
    assert on.config["pipeline"] is True and off.config["pipeline"] is False


def test_identical_under_crash_and_restart():
    on, off = _pair(
        clients=4,
        txns_per_client=25,
        seed=7,
        crash_after_commits=30,
        restart_delay=25,
    )
    assert on.crashes == off.crashes == 1
    assert on.restarts == off.restarts == 1
    assert on.history_text == off.history_text
    assert on.journals == off.journals
    assert on.certification == off.certification
    assert on.ticks == off.ticks


def _normalized_records(result):
    """Trace records with the one legitimate divergence — the run span's
    recorded ``pipeline`` config flag — masked out."""
    records = []
    for record in result.tracer.records:
        if record.get("name") == "stress.run":
            record = dict(record)
            record["attrs"] = _strip_pipeline(record["attrs"])
        records.append(record)
    return records


def test_traces_identical():
    kwargs = dict(clients=3, txns_per_client=10, keys=6, seed=5, network=FAULTY)
    on = run_stress(pipeline=True, tracer=Tracer(), **kwargs)
    off = run_stress(pipeline=False, tracer=Tracer(), **kwargs)
    assert _normalized_records(on) == _normalized_records(off)
    assert any(r.get("name") == "net.msg" for r in off.tracer.records)
