#!/usr/bin/env python3
"""Quickstart: write histories in the paper's notation, check isolation.

Run:  python examples/quickstart.py
"""

import repro

# ----------------------------------------------------------------------
# 1. The paper's H1 (Section 3): T2 observes the invariant x + y = 10
#    violated.  The generalized definitions place it at PL-2 — it has no
#    dirty reads, but an anti-dependency cycle (G2) rules out PL-3.
# ----------------------------------------------------------------------

h1 = "r1(x0, 5) w1(x1, 1) r2(x1, 1) r2(y0, 5) c2 r1(y0, 5) w1(y1, 9) c1"
report = repro.check(h1)
print("=== H1 ===")
print(report.explain())
print()

# ----------------------------------------------------------------------
# 2. H1' — T2 reads *both* of T1's (uncommitted!) values and serializes
#    after it.  Locking-style definitions reject this (dirty read), but it
#    is perfectly serializable, and the checker says so.
# ----------------------------------------------------------------------

h1_prime = "r1(x0, 5) w1(x1, 1) r1(y0, 5) w1(y1, 9) r2(x1, 1) r2(y1, 9) c1 c2"
report = repro.check(h1_prime)
print("=== H1' ===")
print(f"strongest level: {report.strongest_level}")
print(f"serializable:    {report.serializable}")
print()

# ----------------------------------------------------------------------
# 3. A phantom: T1 queries the Sales department by predicate, T2 inserts a
#    matching employee.  The anti-dependency cycle exists only through the
#    predicate edge, so REPEATABLE READ (PL-2.99) admits it while
#    SERIALIZABLE (PL-3) rejects it — Figure 5's point.
# ----------------------------------------------------------------------

phantom = (
    "r1(Dept=Sales: x0*) w2(y2) c2 r1(y2) c1 "
    "[Dept=Sales matches: y2]"
)
report = repro.check(phantom)
print("=== phantom ===")
for level in report.levels:
    print(f"  {level}: {'PROVIDED' if report.ok(level) else 'violated'}")
print()

# ----------------------------------------------------------------------
# 4. Run a real workload through the bundled engine and check the history
#    it emits.  Snapshot isolation famously admits write skew: both
#    transactions read {x, y} from their snapshots and write disjoint
#    objects.
# ----------------------------------------------------------------------

from repro.engine import Database, SnapshotIsolationScheduler

db = Database(SnapshotIsolationScheduler())
db.load({"x": 1, "y": 1})

t1, t2 = db.begin(), db.begin()
t1.write("x", t1.read("x") + t1.read("y"))
t2.write("y", t2.read("x") + t2.read("y"))
t1.commit()
t2.commit()

history = db.history()
report = repro.check(history, extensions=True)
print("=== SI write skew (engine-emitted) ===")
print(f"history: {history}")
print(f"PL-SI: {report.ok(repro.IsolationLevel.PL_SI)}   "
      f"PL-3: {report.ok(repro.IsolationLevel.PL_3)}")
