"""Tests for history statistics and the public hypothesis strategies."""

from hypothesis import given, settings

import repro
from repro.analysis.stats import history_stats
from repro.core import parse_history
from repro.core.levels import IsolationLevel as L
from repro.workloads.strategies import (
    conflicted_histories,
    histories,
    serializable_histories,
)


class TestHistoryStats:
    def test_event_mix_counted(self):
        h = parse_history(
            "w1(x1) w1(y1, dead) r2(x1) r2(P: x1*) c1 c2"
        )
        stats = history_stats(h)
        assert stats.writes == 1
        assert stats.deletes == 1
        assert stats.reads == 1
        assert stats.predicate_reads == 1
        assert stats.transactions == 2
        assert stats.committed == 2

    def test_edge_counts_by_kind(self):
        h = parse_history("w1(x1) c1 r2(x1) w2(x2) c2")
        stats = history_stats(h)
        assert stats.edges == {"ww": 1, "wr": 1}
        assert stats.total_edges == 2

    def test_commit_ratio(self):
        h = parse_history("w1(x1) c1 w2(y2) a2")
        assert history_stats(h).commit_ratio == 0.5

    def test_describe_mentions_counts(self):
        h = parse_history("w1(x1) c1")
        text = history_stats(h).describe()
        assert "1 txns" in text and "events" in text


class TestStrategies:
    @given(histories(max_txns=10))
    @settings(max_examples=20, deadline=None)
    def test_histories_are_well_formed(self, history):
        from repro.core.validation import validate_history

        validate_history(history)  # generator promises this

    @given(serializable_histories(max_txns=10))
    @settings(max_examples=20, deadline=None)
    def test_serializable_strategy_gives_pl2(self, history):
        assert repro.satisfies(history, L.PL_2).ok

    @given(conflicted_histories(max_txns=12))
    @settings(max_examples=20, deadline=None)
    def test_conflicted_strategy_checks_cleanly(self, history):
        repro.check(history)  # no exceptions, whatever the verdict

    def test_conflicted_strategy_actually_produces_anomalies(self):
        from repro.workloads.generator import synthetic_history

        found = any(
            not repro.check(
                synthetic_history(
                    n_txns=12,
                    n_objects=2,
                    ops_per_txn=4,
                    write_fraction=0.7,
                    stale_read_fraction=0.9,
                    seed=seed,
                )
            ).serializable
            for seed in range(10)
        )
        assert found
