"""Rendering histories back into the paper's textual notation.

``format_history(parse_history(text))`` re-parses to an equal history (see
the round-trip property tests), so the textual form is a faithful, diffable
serialization of any history — including ones produced by the engine.
"""

from __future__ import annotations

from typing import List

import re

from .events import Abort, Begin, Commit, Event, PredicateRead, Read, Write
from .history import History
from .objects import Version
from .predicates import MembershipPredicate

__all__ = ["format_history", "format_event"]


_BARE_OBJ_RE = re.compile(r"^[A-Za-z_]+$")


def _obj_label(obj: str) -> str:
    """Bare alphabetic names print as-is; anything else (digits, ``:``)
    is braced so the token re-parses unambiguously."""
    return obj if _BARE_OBJ_RE.match(obj) else "{" + obj + "}"


def _version_label(history: History, version: Version) -> str:
    """Label with an explicit ``.seq`` whenever the writer wrote the object
    more than once, so the text is unambiguous on re-parse."""
    obj = _obj_label(version.obj)
    if version.is_unborn:
        return f"{obj}init"
    multi = Version(version.obj, version.tid, 2) in history.writes
    if multi or version.seq != 1:
        return f"{obj}{version.tid}.{version.seq}"
    return f"{obj}{version.tid}"


def format_event(history: History, event: Event) -> str:
    """One event in notation form."""
    if isinstance(event, Commit):
        return f"c{event.tid}"
    if isinstance(event, Abort):
        return f"a{event.tid}"
    if isinstance(event, Begin):
        return f"b{event.tid}@{event.level}" if event.level is not None else f"b{event.tid}"
    if isinstance(event, Write):
        inner = _version_label(history, event.version)
        if event.dead:
            inner += ", dead"
        elif event.value is not None:
            inner += f", {event.value}"
        return f"w{event.tid}({inner})"
    if isinstance(event, PredicateRead):
        specs = []
        for v in event.vset.versions():
            mark = "*" if history.version_matches(event.predicate, v) else ""
            specs.append(_version_label(history, v) + mark)
        return f"r{event.tid}({event.predicate.name}: {', '.join(specs)})"
    if isinstance(event, Read):
        inner = _version_label(history, event.version)
        if event.value is not None:
            inner += f", {event.value}"
        op = "rc" if event.cursor else "r"
        return f"{op}{event.tid}({inner})"
    raise TypeError(f"unknown event type {type(event).__name__}")


def format_history(history: History, *, include_order: bool = True) -> str:
    """The whole history: events, then the version order block, then match
    declaration blocks for predicate matches not expressible inline (matching
    versions that never appear in a version set)."""
    parts = [format_event(history, ev) for ev in history.events]
    text = " ".join(parts)
    if include_order:
        chains: List[str] = []
        for obj, chain in history.version_order.items():
            visible = [v for v in chain if not v.is_unborn]
            if len(visible) > 1 or (visible and visible[0] not in history.writes):
                # Orders that differ from / are not derivable from the event
                # sequence must be written out; single derivable entries are
                # implicit.
                chains.append(
                    " << ".join(_version_label(history, v) for v in visible)
                )
        if chains:
            text += f"  [{', '.join(chains)}]"
        extra_blocks = _match_blocks(history)
        if extra_blocks:
            text += "  " + "  ".join(extra_blocks)
    return text


def _match_blocks(history: History) -> List[str]:
    """``[P matches: ...]`` blocks for matching versions that no version set
    mentions (inline ``*`` marks cover the rest)."""
    blocks = []
    seen = set()
    for _i, pread in history.predicate_reads:
        pred = pread.predicate
        if pred.name in seen or not isinstance(pred, MembershipPredicate):
            continue
        seen.add(pred.name)
        in_vsets = set()
        for _j, other in history.predicate_reads:
            if other.predicate.name == pred.name:
                in_vsets.update(other.vset.versions())
        stray = sorted(pred.matching - in_vsets)
        if stray:
            labels = ", ".join(_version_label(history, v) for v in stray)
            blocks.append(f"[{pred.name} matches: {labels}]")
    return blocks
