"""Tests for event types and their notation forms (repro.core.events)."""

import pytest

from repro.core.events import Abort, Begin, Commit, PredicateRead, Read, Write
from repro.core.levels import IsolationLevel
from repro.core.objects import Version
from repro.core.predicates import MembershipPredicate, VersionSet


def v(obj, tid, seq=1):
    return Version(obj, tid, seq)


class TestStringForms:
    def test_write(self):
        assert str(Write(1, v("x", 1))) == "w1(x1)"
        assert str(Write(1, v("x", 1), value=5)) == "w1(x1, 5)"
        assert str(Write(1, v("x", 1), dead=True)) == "w1(x1, dead)"
        assert str(Write(1, v("x", 1, 2))) == "w1(x1.2)"

    def test_read(self):
        assert str(Read(2, v("x", 1))) == "r2(x1)"
        assert str(Read(2, v("x", 1), value=5)) == "r2(x1, 5)"
        assert str(Read(2, v("x", 1), cursor=True)) == "rc2(x1)"

    def test_commit_abort(self):
        assert str(Commit(3)) == "c3"
        assert str(Abort(4)) == "a4"

    def test_begin(self):
        assert str(Begin(1)) == "b1"
        assert str(Begin(1, IsolationLevel.PL_2)) == "b1@PL-2"

    def test_predicate_read(self):
        pread = PredicateRead(
            1, MembershipPredicate("P"), VersionSet.of(v("x", 0), v("y", 2))
        )
        assert str(pread) == "r1(P: x0, y2)"


class TestInvariants:
    def test_negative_tid_rejected(self):
        with pytest.raises(ValueError):
            Commit(-1)

    def test_write_ownership_checked(self):
        with pytest.raises(ValueError):
            Write(1, v("x", 2))

    def test_dead_with_value_rejected(self):
        with pytest.raises(ValueError):
            Write(1, v("x", 1), value=1, dead=True)

    def test_events_are_hashable_and_frozen(self):
        a = Read(1, v("x", 0))
        b = Read(1, v("x", 0))
        assert a == b and hash(a) == hash(b)
        with pytest.raises(AttributeError):
            a.tid = 2


class TestMatchedVersions:
    def test_matched_respects_kind_guards(self):
        from repro.core import parse_history

        h = parse_history(
            "w1(x1) w2(y2, dead) r3(P: x1*, y2, zinit) c1 c2 c3"
        )
        _i, pread = h.predicate_reads[0]
        matched = pread.matched_versions(h.kind_of, h.value_of)
        assert matched == (v("x", 1),)
