"""Tests for timeline rendering and multi-witness cycle enumeration."""


from repro.core import DSG, parse_history
from repro.core.conflicts import DepKind
from repro.core.timeline import event_glyph, timeline
from repro.cli import main
import io


class TestTimeline:
    def test_rows_per_transaction(self):
        text = timeline(parse_history("w1(x1) r2(x1) c1 c2"))
        lines = text.splitlines()
        assert lines[0].startswith("T1 |")
        assert lines[1].startswith("T2 |")

    def test_columns_align(self):
        text = timeline(parse_history("w1(x1) r2(x1) c1 c2"))
        t1, t2 = text.splitlines()
        # The commit of T1 (column 3) starts at the same offset in both rows.
        assert t1.index("c") > 0
        assert t2.rstrip().endswith("c")

    def test_glyphs(self):
        h = parse_history(
            "b1@PL-2 w1(x1) rc1(x1) w1(y1, dead) r1(P: x1*) c1"
        )
        glyphs = [event_glyph(ev) for ev in h.events]
        assert glyphs == ["b@PL-2", "w(x1)", "rc(x1)", "del(y1)", "r[P]", "c"]

    def test_idle_marker_customisable(self):
        text = timeline(parse_history("w1(x1) c1 w2(y2) c2"), idle="·")
        assert "·" in text

    def test_cli_timeline(self):
        out = io.StringIO()
        status = main(["timeline", "w1(x1) r2(x1) c1 c2"], out=out)
        assert status == 0
        assert out.getvalue().startswith("T1 |")


class TestFindCycles:
    def test_multiple_distinct_cycles(self):
        # Two independent lost updates: T1/T2 on x, T3/T4 on y.
        h = parse_history(
            "r1(x0) r2(x0) w2(x2) c2 w1(x1) c1 "
            "r3(y0) r4(y0) w4(y4) c4 w3(y3) c3 "
            "[x0 << x2 << x1, y0 << y4 << y3]"
        )
        dsg = DSG(h)
        cycles = dsg.find_cycles(lambda e: True)
        nodesets = {frozenset(c.nodes) for c in cycles}
        assert frozenset({1, 2}) in nodesets
        assert frozenset({3, 4}) in nodesets

    def test_limit_respected(self):
        h = parse_history(
            "r1(x0) r2(x0) w2(x2) c2 w1(x1) c1 "
            "r3(y0) r4(y0) w4(y4) c4 w3(y3) c3 "
            "[x0 << x2 << x1, y0 << y4 << y3]"
        )
        assert len(DSG(h).find_cycles(lambda e: True, limit=1)) == 1

    def test_special_filter(self):
        h = parse_history(
            "w1(x1) w2(y2) r1(y2) r2(x1) c1 c2"  # wr/wr cycle, no anti
        )
        dsg = DSG(h)
        anti_cycles = dsg.find_cycles(
            lambda e: True, special=lambda e: e.kind is DepKind.RW
        )
        assert anti_cycles == []
        dep_cycles = dsg.find_cycles(lambda e: True)
        assert len(dep_cycles) == 1

    def test_special_edge_preferred_among_parallels(self):
        # T1->T2 has both wr and rw edges; the witness should use the rw
        # edge when asked for anti-containing cycles.
        h = parse_history(
            "r1(x0, 10) w2(x2, 15) c2 r1(x2, 15) c1 [x0 << x2]"
        )
        dsg = DSG(h)
        (cycle,) = dsg.find_cycles(
            lambda e: True, special=lambda e: e.kind is DepKind.RW, limit=1
        )
        assert any(e.kind is DepKind.RW for e in cycle.edges)

    def test_acyclic_graph_yields_nothing(self):
        h = parse_history("w1(x1) c1 r2(x1) c2")
        assert DSG(h).find_cycles(lambda e: True) == []
