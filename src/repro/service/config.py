"""Service-layer configuration: frozen, keyword-only dataclasses.

Every knob of the client/server stack lives in one of three configs —
:class:`NetworkConfig` (the simulated unreliable network),
:class:`RetryPolicy` (client timeout/retry/backoff behaviour) and
:class:`~repro.engine.factory.SchedulerConfig` (the engine under the
server, re-exported here).  All three are frozen and keyword-only: a
config value is an immutable fact about a run, and two runs built from
equal configs and seeds replay bit-identically.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..engine.factory import SchedulerConfig

__all__ = ["AdmissionConfig", "NetworkConfig", "RetryPolicy", "SchedulerConfig"]


@dataclass(frozen=True, kw_only=True)
class NetworkConfig:
    """Fault schedule of the simulated network (labrpc-style, but fully
    deterministic: one seeded RNG, logical-tick delays, no threads).

    Probabilities apply independently to every message — requests *and*
    replies — so a lost reply after an applied write really happens, which
    is exactly the case idempotency tokens exist for.
    """

    #: RNG seed for every network fault decision.
    seed: int = 0
    #: P(message silently lost).
    drop: float = 0.0
    #: P(message delivered a second time, at an independent delay).
    duplicate: float = 0.0
    #: Delivery delay bounds in logical ticks (inclusive); with
    #: ``min_delay < max_delay`` messages genuinely reorder.
    min_delay: int = 1
    max_delay: int = 1

    def __post_init__(self) -> None:
        if not (0.0 <= self.drop < 1.0):
            raise ValueError("drop must be in [0, 1)")
        if not (0.0 <= self.duplicate <= 1.0):
            raise ValueError("duplicate must be in [0, 1]")
        if self.min_delay < 0 or self.max_delay < self.min_delay:
            raise ValueError("need 0 <= min_delay <= max_delay")

    @property
    def faulty(self) -> bool:
        """Whether any fault is enabled (zero-fault runs skip the RNG for
        delays only when the bounds pin them)."""
        return self.drop > 0 or self.duplicate > 0 or self.min_delay != self.max_delay

    def with_seed(self, seed: int) -> "NetworkConfig":
        return replace(self, seed=seed)


@dataclass(frozen=True, kw_only=True)
class AdmissionConfig:
    """Server-side admission control and certification backpressure.

    With ``max_active`` set, a ``begin`` that would push the number of
    concurrently active transactions past the bound is **load-shed**: the
    server answers ``{"error": "shed", "retry_after": ticks}`` without
    touching the engine, and the client backs off for the server-directed
    interval before retrying the same idempotency token.  ``shed_probability``
    makes the bound soft: above the bound each begin is shed with that
    seeded probability (1.0 = hard bound); draws come from the server's own
    admission RNG, so shedding replays identically per seed.

    ``on_uncertified`` wires :mod:`repro.analysis.repair` into the serve
    path: when a live certification fails (a committed transaction's
    declared level was violated), the server either

    * ``"ignore"`` — record the verdict only (the default);
    * ``"downgrade"`` — downgrade *the session*: subsequent transactions
      on the violating session are declared at the strongest level the
      monitor still certifies (emitted as an ``admission.downgrade`` trace
      event);
    * ``"repair"`` — compute the abort-to-restore suggestion (which
      committed transactions would have to abort, cascades included, for
      the history to provide the declared level again) and emit it as an
      ``admission.repair`` trace event plus
      :attr:`~repro.service.server.Server.repair_suggestions`.
    """

    #: Maximum concurrently active transactions (0 disables shedding).
    max_active: int = 0
    #: Ticks the shed reply tells the client to stay away.
    retry_after: int = 8
    #: P(shed | over the bound); draws are seeded (see ``seed``).
    shed_probability: float = 1.0
    #: RNG seed for the soft-bound shed draws.
    seed: int = 0
    #: Reaction to a failed live certification; see class docstring.
    on_uncertified: str = "ignore"
    #: Certify commits in batches of this size instead of one by one —
    #: commits awaiting a verdict are the *certification lag*.  1 keeps
    #: today's certify-every-commit behaviour (replies carry the verdict).
    certify_every: int = 1

    def __post_init__(self) -> None:
        if self.max_active < 0 or self.retry_after < 1:
            raise ValueError("need max_active >= 0 and retry_after >= 1")
        if not (0.0 <= self.shed_probability <= 1.0):
            raise ValueError("shed_probability must be in [0, 1]")
        if self.on_uncertified not in ("ignore", "downgrade", "repair"):
            raise ValueError(
                "on_uncertified must be 'ignore', 'downgrade' or 'repair'"
            )
        if self.certify_every < 1:
            raise ValueError("certify_every must be >= 1")


@dataclass(frozen=True, kw_only=True)
class RetryPolicy:
    """Client-side timeout/retry/backoff policy.

    All durations are logical network ticks.  Retries reuse the original
    request's idempotency token, so a retry can never double-apply an
    operation the server already executed.
    """

    #: Attempts per logical operation (first try included).
    max_attempts: int = 10
    #: Ticks to wait for a reply before retrying.
    timeout: int = 20
    #: Backoff before retry *n* is ``backoff * factor**(n-1)``, capped.
    backoff: int = 2
    factor: float = 2.0
    max_backoff: int = 64

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.timeout < 1 or self.backoff < 0 or self.max_backoff < 0:
            raise ValueError("timeout must be >= 1 and backoffs >= 0")
        if self.factor < 1.0:
            raise ValueError("factor must be >= 1.0")

    def backoff_before(self, attempt: int) -> int:
        """Ticks of backoff before retry ``attempt`` (attempt 1 = first
        retry).  Deterministic — the schedule is part of the observable
        history, so no jitter."""
        if attempt < 1:
            return 0
        return min(int(self.backoff * self.factor ** (attempt - 1)), self.max_backoff)

    def schedule(self) -> tuple:
        """The full backoff schedule, one entry per possible retry."""
        return tuple(
            self.backoff_before(n) for n in range(1, self.max_attempts)
        )
