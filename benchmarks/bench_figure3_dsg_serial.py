"""FIG3 — Figure 3: the DSG of H_serial.

Reconstructs the paper's example DSG and asserts the exact edge set the
figure draws, plus the serialization order T1, T2, T3 the paper states.
The timing measures full DSG construction for the history.
"""

from __future__ import annotations

from repro.core import DSG
from repro.core.canonical import H_SERIAL

EXPECTED_EDGES = {
    (1, 2, "ww"),
    (1, 2, "wr"),
    (1, 3, "ww"),
    (2, 3, "wr"),
    (2, 3, "rw"),
}


def build():
    return DSG(H_SERIAL.history)


def test_figure3_dsg(benchmark, record_table):
    dsg = benchmark(build)
    edges = {
        (e.src, e.dst, ("p" if e.via_predicate else "") + e.kind.value)
        for e in dsg.edges
    }
    assert edges == EXPECTED_EDGES
    assert dsg.is_acyclic()
    assert dsg.topological_order() == [1, 2, 3]

    lines = [
        "FIG3 — DSG(H_serial)",
        f"history: {H_SERIAL.history}",
        "edges:",
    ]
    for src, dst, tag in sorted(edges):
        lines.append(f"  T{src} -{tag}-> T{dst}")
    lines.append("serialization order: T1, T2, T3   (paper: 'serializable in the order T1; T2; T3')")
    record_table("figure3_dsg_serial", "\n".join(lines))
