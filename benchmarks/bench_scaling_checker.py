"""SCALE — checker cost versus history size.

Not a paper figure (the paper has no performance evaluation) but the
engineering question a downstream adopter asks first: how does full
classification — DSG construction plus every cycle search — scale with
history size?  Synthetic histories of 10^2–10^4.5 events, with and without
multi-version (stale-read) conflicts, are classified end to end.

The assertions pin the qualitative shape: cost grows roughly linearly in
events for the conflict-sparse case (each event contributes O(1) edges and
SCC analysis is linear), so the biggest history must classify well under a
second on laptop hardware.
"""

from __future__ import annotations

import json
import pathlib

import pytest

import repro
from repro.observability import MetricsRegistry
from repro.workloads import synthetic_history

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

SIZES = [10, 50, 200, 1000, 4000]  # transactions; ~6 events each


@pytest.mark.parametrize("n_txns", SIZES)
def test_scaling_clean_histories(benchmark, n_txns):
    history = synthetic_history(
        n_txns=n_txns, n_objects=max(10, n_txns // 5), ops_per_txn=5, seed=1
    )
    report = benchmark(lambda: repro.check(history))
    assert report.strongest_level is not None


@pytest.mark.parametrize("n_txns", SIZES)
def test_scaling_conflicted_histories(benchmark, n_txns):
    history = synthetic_history(
        n_txns=n_txns,
        n_objects=max(5, n_txns // 10),
        ops_per_txn=5,
        stale_read_fraction=0.5,
        write_fraction=0.6,
        seed=2,
    )
    # Conflicted histories exercise the cycle searches' worst paths.
    benchmark(lambda: repro.check(history))


def test_largest_history_under_a_second(benchmark, record_table):
    history = synthetic_history(
        n_txns=4000, n_objects=800, ops_per_txn=5, seed=3
    )
    registry = MetricsRegistry()
    report = benchmark.pedantic(
        lambda: repro.check(history, metrics=registry), iterations=1, rounds=3
    )
    # Time the classification callable itself (the harness's own setup and
    # bookkeeping used to be wall-clocked in, hiding ~2x slack).
    elapsed = benchmark.stats.stats.min
    assert elapsed < 1.0, f"classification took {elapsed:.2f}s"
    # The per-stage split comes from the checker's own instrumentation —
    # Analysis.timings for the last run, checker_* counters for totals
    # across all rounds — so the committed summary shows where the time
    # goes, not just that it fits the bound.
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "scaling_summary.json").write_text(
        json.dumps(
            {
                "events": len(history),
                "transactions": len(history.tids),
                "best_run_s": round(elapsed, 6),
                "strongest_level": str(report.strongest_level),
                "timings_s": {
                    stage: round(seconds, 6)
                    for stage, seconds in report.timings.items()
                },
                "counters": {
                    "checker_checks_total": registry.counter(
                        "checker_checks_total"
                    ).total,
                    "checker_edges_total": registry.counter(
                        "checker_edges_total"
                    ).total,
                },
            },
            indent=2,
        )
        + "\n"
    )
    record_table(
        "scaling_summary",
        f"SCALE — {len(history)} events, {len(history.tids)} transactions "
        f"classified in ~{elapsed * 1000:.0f} ms/run "
        f"(strongest level {report.strongest_level}; extraction "
        f"{report.timings.get('extract', 0) * 1000:.0f} ms of the last run)",
    )
