"""Tests for the exception hierarchy (repro.exceptions)."""

import pytest

from repro.exceptions import (
    DeadlockError,
    EngineError,
    HistoryError,
    InvalidOperation,
    MalformedHistoryError,
    ParseError,
    PredicateError,
    ReproError,
    TransactionAborted,
    ValidationFailure,
    VersionOrderError,
    WorkloadError,
    WouldBlock,
    WriteConflict,
)


class TestHierarchy:
    def test_everything_is_a_repro_error(self):
        for exc_type in (
            HistoryError,
            MalformedHistoryError,
            VersionOrderError,
            ParseError,
            PredicateError,
            EngineError,
            InvalidOperation,
            WorkloadError,
        ):
            assert issubclass(exc_type, ReproError)

    def test_engine_aborts_are_engine_errors(self):
        for exc_type in (TransactionAborted, DeadlockError, ValidationFailure, WriteConflict):
            assert issubclass(exc_type, EngineError)
            assert issubclass(exc_type, TransactionAborted) or exc_type is TransactionAborted

    def test_history_errors_catchable_together(self):
        with pytest.raises(HistoryError):
            raise MalformedHistoryError("x")
        with pytest.raises(HistoryError):
            raise VersionOrderError("x")
        with pytest.raises(HistoryError):
            raise ParseError("x")


class TestMessages:
    def test_transaction_aborted_carries_reason(self):
        exc = TransactionAborted(3, "deadlock")
        assert exc.tid == 3 and exc.reason == "deadlock"
        assert "T3" in str(exc)

    def test_deadlock_error(self):
        exc = DeadlockError(5)
        assert exc.reason == "deadlock"

    def test_validation_failure_names_conflict(self):
        exc = ValidationFailure(2, 7)
        assert exc.conflicting_tid == 7
        assert "T7" in str(exc)

    def test_write_conflict_names_object(self):
        exc = WriteConflict(2, "x", 7)
        assert exc.obj == "x"
        assert "first-committer-wins" in str(exc)

    def test_would_block_lists_holders(self):
        exc = WouldBlock(2, "write lock on 'x'", {5, 3})
        assert exc.holders == {3, 5}
        assert "T3, T5" in str(exc)

    def test_parse_error_position(self):
        exc = ParseError("bad", token="zzz", position=4)
        assert "zzz" in str(exc) and "4" in str(exc)
