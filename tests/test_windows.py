"""Windowed telemetry: sliding counters/values, SLO latching, sampling."""

import pytest

from repro.observability import (
    SLO,
    SLOStatus,
    WindowedCounter,
    WindowedTelemetry,
    WindowedValues,
)


class TestWindowedCounter:
    def test_counts_inside_window_only(self):
        c = WindowedCounter(10)
        c.inc(0)
        c.inc(5)
        c.inc(12)
        # Window is (now - 10, now]: the tick-0 event has aged out at 12.
        assert c.count(12) == 2
        assert c.total == 3

    def test_rate(self):
        c = WindowedCounter(100)
        for t in range(0, 50, 5):
            c.inc(t)
        assert c.rate(50) == pytest.approx(10 / 100)

    def test_amount_and_pruning(self):
        c = WindowedCounter(4)
        c.inc(0, 7)
        assert c.count(0) == 7
        assert c.count(100) == 0
        assert c.total == 7

    def test_window_validation(self):
        with pytest.raises(ValueError):
            WindowedCounter(0)


class TestWindowedValues:
    def test_percentile_nearest_rank(self):
        w = WindowedValues(100)
        for i, v in enumerate([10, 20, 30, 40]):
            w.observe(i, v)
        assert w.percentile(50, 3) == 20
        assert w.percentile(99, 3) == 40
        assert w.percentile(0, 3) == 10

    def test_empty_window_is_none(self):
        w = WindowedValues(10)
        assert w.percentile(99, 0) is None
        assert w.stats(0) == {"count": 0}
        w.observe(0, 5.0)
        assert w.percentile(99, 100) is None  # aged out

    def test_stats_fields(self):
        w = WindowedValues(100)
        for i, v in enumerate([1, 2, 3, 4, 5]):
            w.observe(i, v)
        s = w.stats(4)
        assert s["count"] == 5
        assert s["p50"] == 3
        assert s["max"] == 5
        assert s["mean"] == pytest.approx(3.0)

    def test_lifetime_totals_survive_pruning(self):
        w = WindowedValues(2)
        w.observe(0, 10.0)
        w.observe(50, 20.0)
        assert w.count(50) == 1
        assert w.total_count == 2
        assert w.total_sum == pytest.approx(30.0)


class TestSLO:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            SLO(name="x", kind="throughput", threshold=1)

    def test_q_range(self):
        with pytest.raises(ValueError):
            SLO(name="x", kind="latency", threshold=1, q=150)

    def test_describe(self):
        slo = SLO(name="p99", kind="latency", threshold=40, verb="commit")
        assert slo.describe() == "p99 commit latency <= 40"
        slo = SLO(name="cert", kind="certified_fraction", threshold=0.9)
        assert slo.describe() == "certified fraction >= 0.9"

    def test_latch_on_violation(self):
        status = SLOStatus(SLO(name="q", kind="queue_depth", threshold=5))
        status.observe(3, now=10)
        assert status.ok
        status.observe(9, now=20)
        assert not status.ok and status.violated_at == 20
        # Recovery does not unlatch; worst and last keep tracking.
        status.observe(1, now=30)
        assert not status.ok and status.violated_at == 20
        assert status.worst == 9 and status.last == 1
        assert status.evaluations == 3

    def test_lower_bound_direction(self):
        status = SLOStatus(
            SLO(name="cert", kind="certified_fraction", threshold=0.9)
        )
        status.observe(0.95, now=1)
        assert status.ok
        status.observe(0.5, now=2)
        assert not status.ok and status.worst == 0.5

    def test_none_values_are_skipped(self):
        status = SLOStatus(SLO(name="p99", kind="latency", threshold=10))
        status.observe(None, now=5)
        assert status.ok and status.evaluations == 0

    def test_to_dict(self):
        status = SLOStatus(SLO(name="q", kind="queue_depth", threshold=5))
        status.observe(7, now=4)
        d = status.to_dict()
        assert d["name"] == "q" and d["ok"] is False
        assert d["violated_at"] == 4 and d["worst"] == 7


class TestWindowedTelemetry:
    def _fed(self, slos=()):
        tel = WindowedTelemetry(window=100, sample_every=50, slos=slos)
        for t in range(0, 100, 10):
            tel.observe_arrival(t)
            tel.observe_latency("txn", 5 + t // 10, t)
            tel.observe_commit(True, t)
        return tel

    def test_rolling_and_certified_fraction(self):
        tel = self._fed()
        rolling = tel.rolling("txn", 90)
        assert rolling["count"] == 10
        assert tel.certified_fraction(90) == 1.0
        tel.observe_commit(False, 95)
        assert tel.certified_fraction(95) == pytest.approx(10 / 11)
        assert tel.rolling("unseen", 90) == {"count": 0}

    def test_gauges_track_maxima(self):
        tel = WindowedTelemetry(window=10)
        tel.set_gauges(queue_depth=3, certification_lag=1)
        tel.set_gauges(queue_depth=9)
        tel.set_gauges(queue_depth=2, certification_lag=4)
        assert tel.queue_depth == 2 and tel.max_queue_depth == 9
        assert tel.certification_lag == 4 and tel.max_certification_lag == 4

    def test_maybe_sample_cadence(self):
        tel = WindowedTelemetry(window=100, sample_every=50)
        for t in range(0, 160, 10):
            tel.maybe_sample(t)
        assert [row["t"] for row in tel.timeline] == [0, 50, 100, 150]

    def test_sample_rows_and_slo_evaluation(self):
        slo = SLO(name="p99", kind="latency", threshold=8, verb="txn")
        tel = self._fed(slos=(slo,))
        row = tel.sample(90)
        assert row["t"] == 90
        assert row["arrival_rate"] == pytest.approx(10 / 100)
        assert "txn_p99" in row and row["certified_fraction"] == 1.0
        # p99 of latencies 5..14 is 14 > 8: the SLO latched.
        assert not tel.all_slos_ok
        assert tel.slo_status[0].violated_at == 90

    def test_snapshot_shape(self):
        tel = self._fed()
        tel.observe_shed(95)
        tel.observe_abort(95)
        snap = tel.snapshot(95)
        assert snap["commits_total"] == 10
        assert snap["sheds_total"] == 1
        assert snap["aborts_total"] == 1
        assert "txn" in snap["rolling"]
        assert snap["slos"] == []

    def test_sample_every_validation(self):
        with pytest.raises(ValueError):
            WindowedTelemetry(sample_every=0)
