"""Tests for the Figure 1 locking scheduler (repro.engine.locking)."""

import pytest

import repro
from repro.core.levels import IsolationLevel as L
from repro.core.predicates import FieldPredicate
from repro.engine import Database, LockingScheduler
from repro.engine.locking import PROFILES, profile_for_level
from repro.engine.locks import LockDuration
from repro.exceptions import WouldBlock


def db_with(profile, initial=None):
    db = Database(LockingScheduler(profile))
    db.load(initial or {"x": 1, "y": 2})
    return db


class TestProfiles:
    def test_figure1_rows(self):
        d0 = PROFILES["degree-0"]
        assert (d0.item_write, d0.item_read) == (LockDuration.SHORT, LockDuration.NONE)
        ser = PROFILES["serializable"]
        assert (ser.item_write, ser.item_read, ser.predicate_read) == (
            LockDuration.LONG,
            LockDuration.LONG,
            LockDuration.LONG,
        )
        rr = PROFILES["repeatable-read"]
        assert rr.predicate_read is LockDuration.SHORT

    def test_level_mapping(self):
        assert profile_for_level(L.PL_3).name == "serializable"
        assert profile_for_level(L.PL_2).name == "read-committed"
        with pytest.raises(KeyError):
            profile_for_level(L.PL_SI)


class TestSerializableProfile:
    def test_write_blocks_conflicting_write(self):
        db = db_with("serializable")
        t1, t2 = db.begin(), db.begin()
        t1.write("x", 10)
        with pytest.raises(WouldBlock):
            t2.write("x", 20)

    def test_read_blocks_on_uncommitted_write(self):
        db = db_with("serializable")
        t1, t2 = db.begin(), db.begin()
        t1.write("x", 10)
        with pytest.raises(WouldBlock):
            t2.read("x")

    def test_commit_releases_locks(self):
        db = db_with("serializable")
        t1 = db.begin()
        t1.write("x", 10)
        t1.commit()
        t2 = db.begin()
        assert t2.read("x") == 10

    def test_long_read_locks_block_writers(self):
        db = db_with("serializable")
        t1, t2 = db.begin(), db.begin()
        t1.read("x")
        with pytest.raises(WouldBlock):
            t2.write("x", 5)


class TestReadCommittedProfile:
    def test_short_read_locks_allow_later_write(self):
        db = db_with("read-committed")
        t1, t2 = db.begin(), db.begin()
        assert t1.read("x") == 1
        t2.write("x", 99)  # T1's read lock was short
        t2.commit()
        assert t1.read("x") == 99  # fuzzy read, by design

    def test_no_dirty_reads(self):
        db = db_with("read-committed")
        t1, t2 = db.begin(), db.begin()
        t1.write("x", 99)
        with pytest.raises(WouldBlock):
            t2.read("x")


class TestReadUncommittedProfile:
    def test_dirty_read_happens(self):
        db = db_with("read-uncommitted")
        t1, t2 = db.begin(), db.begin()
        t1.write("x", 99)
        assert t2.read("x") == 99  # no read locks: dirty read

    def test_dirty_read_of_aborter_yields_g1a(self):
        db = db_with("read-uncommitted")
        t1, t2 = db.begin(), db.begin()
        t1.write("x", 99)
        assert t2.read("x") == 99
        t2.commit()
        t1.abort()
        from repro.core.phenomena import Analysis, Phenomenon

        assert Analysis(db.history()).exhibits(Phenomenon.G1A)

    def test_long_write_locks_still_block_writers(self):
        db = db_with("read-uncommitted")
        t1, t2 = db.begin(), db.begin()
        t1.write("x", 99)
        with pytest.raises(WouldBlock):
            t2.write("x", 1)


class TestDegree0Profile:
    def test_interleaved_writes_allowed(self):
        db = db_with("degree-0")
        t1, t2 = db.begin(), db.begin()
        t1.write("x", 10)
        t2.write("x", 20)  # short write locks: no conflict
        t2.commit()
        t1.commit()

    def test_version_order_follows_write_order(self):
        from repro.core.objects import Version

        db = db_with("degree-0")
        t1, t2 = db.begin(), db.begin()
        t1.write("x", 10)
        t2.write("x", 20)
        t2.commit()
        t1.commit()  # commits in opposite order of writes
        h = db.history()
        chain = h.order_of("x")
        assert chain.index(Version("x", t1.tid)) < chain.index(Version("x", t2.tid))


class TestUndo:
    def test_abort_restores_previous_value(self):
        db = db_with("serializable")
        t1 = db.begin()
        t1.write("x", 99)
        t1.abort()
        t2 = db.begin()
        assert t2.read("x") == 1

    def test_abort_of_unborn_insert(self):
        db = db_with("serializable")
        t1 = db.begin()
        obj = t1.insert("emp", {"dept": "Sales"})
        t1.abort()
        t2 = db.begin()
        assert t2.read(obj) is None


class TestReadYourOwnWrites:
    def test_read_sees_own_buffer(self):
        db = db_with("serializable")
        t1 = db.begin()
        t1.write("x", 42)
        assert t1.read("x") == 42

    def test_read_after_own_delete_sees_nothing(self):
        db = db_with("serializable")
        t1 = db.begin()
        t1.delete("x")
        assert t1.read("x") is None

    def test_select_sees_own_insert(self):
        db = db_with("serializable", {"emp:1": {"dept": "Sales", "sal": 1}})
        pred = FieldPredicate("emp", "dept", "==", "Sales")
        t1 = db.begin()
        t1.insert("emp", {"dept": "Sales", "sal": 2})
        assert len(t1.select(pred)) == 2


class TestPredicateLocks:
    PRED = FieldPredicate("emp", "dept", "==", "Sales")

    def initial(self):
        return {"emp:1": {"dept": "Sales", "sal": 10}}

    def test_serializable_predicate_blocks_insert(self):
        db = db_with("serializable", self.initial())
        t1, t2 = db.begin(), db.begin()
        t1.count(self.PRED)
        with pytest.raises(WouldBlock):
            t2.insert("emp", {"dept": "Sales", "sal": 5})

    def test_repeatable_read_allows_phantom_insert(self):
        db = db_with("repeatable-read", self.initial())
        t1, t2 = db.begin(), db.begin()
        before = t1.count(self.PRED)
        t2.insert("emp", {"dept": "Sales", "sal": 5})
        t2.commit()
        after = t1.count(self.PRED)
        t1.commit()
        assert (before, after) == (1, 2)  # the phantom

    def test_predicate_read_blocks_on_uncommitted_write(self):
        db = db_with("repeatable-read", self.initial())
        t1, t2 = db.begin(), db.begin()
        t1.insert("emp", {"dept": "Sales", "sal": 5})
        with pytest.raises(WouldBlock):
            t2.count(self.PRED)


class TestMixedProfiles:
    def test_transaction_level_selects_profile(self):
        db = db_with("serializable")
        weak = db.begin(level=L.PL_1)  # read-uncommitted row
        strong = db.begin(level=L.PL_3)
        strong.write("x", 50)
        assert weak.read("x") == 50  # PL-1 transaction dirty-reads
        with pytest.raises(WouldBlock):
            db.begin(level=L.PL_2).read("x")


class TestEmittedHistories:
    def test_serializable_run_is_pl3(self):
        db = db_with("serializable")
        t1 = db.begin()
        t1.write("x", t1.read("x") + 1)
        t1.commit()
        t2 = db.begin()
        t2.write("y", t2.read("x") + 1)
        t2.commit()
        assert repro.classify(db.history()) is L.PL_3


class TestSelectForUpdate:
    def test_for_update_takes_write_lock(self):
        db = db_with("serializable")
        t1, t2 = db.begin(), db.begin()
        t1.read("x", for_update=True)
        with pytest.raises(WouldBlock):
            t2.read("x")  # plain read blocks on the write lock

    def test_plain_reads_share(self):
        db = db_with("serializable")
        t1, t2 = db.begin(), db.begin()
        t1.read("x")
        t2.read("x")  # shared, no conflict

    def test_no_upgrade_deadlock_between_increments(self):
        """Two read-modify-writes of the same key never deadlock when both
        reads are FOR UPDATE — the second blocks at the read, no upgrade."""
        from repro.engine import Increment, Program, Simulator

        for seed in range(10):
            db = db_with("serializable")
            programs = [Program(f"p{i}", [Increment("x")]) for i in range(2)]
            from repro.engine import Simulator as Sim

            result = Sim(db, programs, seed=seed).run()
            assert result.deadlocks == 0
            assert result.committed_count == 2

    def test_plain_read_then_write_can_upgrade_deadlock(self):
        """The contrast: plain reads before writes do produce upgrade
        deadlocks on some interleavings (which detection then resolves)."""
        from repro.engine import Program, Read, Simulator, Write

        deadlocks = 0
        for seed in range(10):
            db = db_with("serializable")
            programs = [
                Program(
                    f"p{i}",
                    [Read("x", into="v"), Write("x", lambda r: (r["v"] or 0) + 1)],
                )
                for i in range(2)
            ]
            result = Simulator(db, programs, seed=seed).run()
            deadlocks += result.deadlocks
            assert result.committed_count == 2
        assert deadlocks > 0

    def test_multiversion_schedulers_ignore_the_hint(self):
        from repro.engine import SnapshotIsolationScheduler

        db = Database(SnapshotIsolationScheduler())
        db.load({"x": 1})
        t1, t2 = db.begin(), db.begin()
        assert t1.read("x", for_update=True) == 1
        assert t2.read("x") == 1  # no blocking under SI
